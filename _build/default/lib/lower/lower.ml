open Vliw_ir
module G = Vliw_ddg.Graph
module D = Vliw_alias.Disambiguate

type operand_src =
  | Imm of int64
  | Affine_idx of int * int
  | Reg of { producer : int; dist : int; init : int64 }

type nsem =
  | Sem_bin of Ast.ty * Ast.binop
  | Sem_un of Ast.ty * Ast.unop
  | Sem_select
  | Sem_mov

type t = {
  graph : G.t;
  site_node : int array;
  ambiguous : (G.edge, unit) Hashtbl.t;
  operands : (int, operand_src list) Hashtbl.t;
  sems : (int, nsem) Hashtbl.t;
  mem_index : (int, operand_src) Hashtbl.t;
  scalar_update : (string * int) list;
  kernel : Ast.kernel;
}

(* Latencies and FU classes of arithmetic operations. *)
let binop_info ty (op : Ast.binop) =
  let fl = Ast.ty_is_float ty in
  let name = if fl then "f" ^ Pp.binop_sym op else Pp.binop_sym op in
  let latency =
    if fl then match op with Div -> 8 | _ -> 2
    else match op with Mul -> 2 | Div | Rem -> 4 | _ -> 1
  in
  (name, not fl, latency)

let unop_info ty (op : Ast.unop) =
  let fl = Ast.ty_is_float ty in
  let name =
    (if fl then "f" else "")
    ^ match op with Ast.Neg -> "neg" | Ast.Not -> "not" | Ast.Abs -> "abs"
  in
  (name, not fl, if fl then 2 else 1)

let affine_of_expr (k : Ast.kernel) e =
  let temp_defs = Hashtbl.create 8 in
  List.iter
    (fun stmt -> match stmt with
      | Ast.Let (v, d) -> Hashtbl.replace temp_defs v d
      | _ -> ())
    k.Ast.k_body;
  let rec aff e =
    match e with
    | Ast.Int n ->
      let v = Int64.to_int n in
      if Int64.of_int v = n then Some (0, v) else None
    | Ast.Var v when v = Ast.induction_var -> Some (1, 0)
    | Ast.Var v -> Option.bind (Hashtbl.find_opt temp_defs v) aff
    | Ast.Unop (Neg, a) -> Option.map (fun (x, y) -> (-x, -y)) (aff a)
    | Ast.Binop (Add, a, b) -> (
      match (aff a, aff b) with
      | Some (xa, ya), Some (xb, yb) -> Some (xa + xb, ya + yb)
      | _ -> None)
    | Ast.Binop (Sub, a, b) -> (
      match (aff a, aff b) with
      | Some (xa, ya), Some (xb, yb) -> Some (xa - xb, ya - yb)
      | _ -> None)
    | Ast.Binop (Mul, a, b) -> (
      match (aff a, aff b) with
      | Some (0, c), Some (x, y) | Some (x, y), Some (0, c) ->
        Some (c * x, c * y)
      | _ -> None)
    | Ast.Binop (Shl, a, b) -> (
      match (aff a, aff b) with
      | Some (x, y), Some (0, c) when c >= 0 && c <= 31 ->
        let m = 1 lsl c in
        Some (x * m, y * m)
      | _ -> None)
    | _ -> None
  in
  aff e

(* a*i + b stays within [0, len) for all i in [0, trip)? Linear, so checking
   the endpoints suffices. *)
let in_bounds ~a ~b ~len ~trip =
  let v0 = b and v1 = (a * (trip - 1)) + b in
  min v0 v1 >= 0 && max v0 v1 < len

let lower (k : Ast.kernel) =
  let info = Typecheck.check_exn k in
  let g = G.create () in
  let operands : (int, operand_src list) Hashtbl.t = Hashtbl.create 32 in
  let sems : (int, nsem) Hashtbl.t = Hashtbl.create 32 in
  let mem_index : (int, operand_src) Hashtbl.t = Hashtbl.create 8 in
  let ambiguous : (G.edge, unit) Hashtbl.t = Hashtbl.create 8 in
  let temp_ops : (string, operand_src) Hashtbl.t = Hashtbl.create 8 in
  let site_nodes = ref [] in
  let connect dst o =
    match o with
    | Reg { producer; dist; _ } -> G.add_edge g ~dist RF ~src:producer ~dst
    | Imm _ | Affine_idx _ -> ()
  in
  (* Every assigned scalar gets an up-front "mov" node producing its
     next-iteration value; readers take it at distance 1, with the declared
     initial value before the first iteration. *)
  let scalar_movs = Hashtbl.create 4 in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Assign (v, _) when not (Hashtbl.mem scalar_movs v) ->
        let n =
          G.add_node g (G.Arith { aname = "mov." ^ v; fu_int = true; latency = 1 })
        in
        Hashtbl.replace sems n.G.n_id Sem_mov;
        Hashtbl.replace scalar_movs v n.G.n_id
      | _ -> ())
    k.k_body;
  let scalar_init v =
    let d = List.find (fun (s : Ast.scalar_decl) -> s.sc_name = v) k.k_scalars in
    Sem.truncate d.sc_ty d.sc_init
  in
  let mk_arith name fu_int latency sem ops =
    let n = G.add_node g (G.Arith { aname = name; fu_int; latency }) in
    Hashtbl.replace sems n.G.n_id sem;
    Hashtbl.replace operands n.G.n_id ops;
    List.iter (connect n.G.n_id) ops;
    Reg { producer = n.G.n_id; dist = 0; init = 0L }
  in
  let rec mk_mem ~is_store arr idx_expr =
    let d = Typecheck.array_decl info arr in
    let eb = Ast.ty_bytes d.arr_ty in
    let affine =
      match affine_of_expr k idx_expr with
      | Some (a, b) when in_bounds ~a ~b ~len:d.arr_len ~trip:k.k_trip ->
        Some (a * eb, b * eb)
      | _ -> None
    in
    (* canonical order: index computation nodes first, then the memory op *)
    let idx_op = if affine = None then Some (lo_expr idx_expr) else None in
    let mr =
      {
        G.mr_array = arr;
        mr_affine = affine;
        mr_bytes = eb;
        mr_float = Ast.ty_is_float d.arr_ty;
        mr_site = List.length !site_nodes;
      }
    in
    let n = G.add_node g (if is_store then G.Store mr else G.Load mr) in
    site_nodes := n.G.n_id :: !site_nodes;
    (match idx_op with
    | Some o ->
      Hashtbl.replace mem_index n.G.n_id o;
      connect n.G.n_id o
    | None -> ());
    n.G.n_id
  and lo_expr e : operand_src =
    match affine_of_expr k e with
    | Some (0, c) -> Imm (Int64.of_int c)
    | Some (a, b) -> Affine_idx (a, b)
    | None -> (
      match e with
      | Ast.Int n -> Imm n
      | Ast.Var v -> (
        match Hashtbl.find_opt temp_ops v with
        | Some o -> o
        | None -> (
          (* a scalar: assigned ones read last iteration's mov, constants
             fold to their initial value *)
          match Hashtbl.find_opt scalar_movs v with
          | Some mov -> Reg { producer = mov; dist = 1; init = scalar_init v }
          | None -> Imm (scalar_init v)))
      | Ast.Load (arr, idx) ->
        let id = mk_mem ~is_store:false arr idx in
        Reg { producer = id; dist = 0; init = 0L }
      | Ast.Unop (op, a) -> (
        let ty = Typecheck.expr_ty info a in
        let oa = lo_expr a in
        match oa with
        | Imm va -> Imm (Sem.unop ty op va)
        | _ ->
          let name, fu_int, lat = unop_info ty op in
          mk_arith name fu_int lat (Sem_un (ty, op)) [ oa ])
      | Ast.Binop (op, a, b) -> (
        let ta = Typecheck.expr_ty info a in
        let ty = if Ast.ty_is_float ta then ta else Ast.I64 in
        let oa = lo_expr a in
        let ob = lo_expr b in
        match (oa, ob) with
        | Imm va, Imm vb -> Imm (Sem.binop ty op va vb)
        | _ ->
          let name, fu_int, lat = binop_info ty op in
          mk_arith name fu_int lat (Sem_bin (ty, op)) [ oa; ob ])
      | Ast.Select (c, a, b) -> (
        let oc = lo_expr c in
        let oa = lo_expr a in
        let ob = lo_expr b in
        match (oc, oa, ob) with
        | Imm vc, Imm va, Imm vb -> Imm (if vc <> 0L then va else vb)
        | _ -> mk_arith "select" true 1 Sem_select [ oc; oa; ob ]))
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Let (v, e) -> Hashtbl.replace temp_ops v (lo_expr e)
      | Ast.Store (arr, idx, value) ->
        (* canonical order: subscript loads, then value loads, then store *)
        let d = Typecheck.array_decl info arr in
        let eb = Ast.ty_bytes d.arr_ty in
        let affine =
          match affine_of_expr k idx with
          | Some (a, b) when in_bounds ~a ~b ~len:d.arr_len ~trip:k.k_trip ->
            Some (a * eb, b * eb)
          | _ -> None
        in
        let idx_op = if affine = None then Some (lo_expr idx) else None in
        let vo = lo_expr value in
        let mr =
          {
            G.mr_array = arr;
            mr_affine = affine;
            mr_bytes = eb;
            mr_float = Ast.ty_is_float d.arr_ty;
            mr_site = List.length !site_nodes;
          }
        in
        let n = G.add_node g (G.Store mr) in
        site_nodes := n.G.n_id :: !site_nodes;
        Hashtbl.replace operands n.G.n_id [ vo ];
        connect n.G.n_id vo;
        (match idx_op with
        | Some o ->
          Hashtbl.replace mem_index n.G.n_id o;
          connect n.G.n_id o
        | None -> ())
      | Ast.Assign (v, e) ->
        let o = lo_expr e in
        let mov = Hashtbl.find scalar_movs v in
        Hashtbl.replace operands mov [ o ];
        connect mov o)
    k.k_body;
  (* Memory dependence pass: all ordered pairs, both loop directions. *)
  let mems = G.mem_refs g in
  let decl name = Typecheck.array_decl info name in
  let may_overlap a b =
    a <> b
    && ((decl a).arr_may_overlap = Some b || (decl b).arr_may_overlap = Some a)
  in
  let acc (r : G.mem_ref) =
    { D.a_array = r.mr_array; a_affine = r.mr_affine; a_bytes = r.mr_bytes }
  in
  let add_dep (nf, rf) (ns, rs) before =
    let fst_store = G.is_store nf and snd_store = G.is_store ns in
    if fst_store || snd_store then
      match
        D.dependence ~may_overlap ~first:(acc rf) ~second:(acc rs)
          ~first_before_second:before
      with
      | D.No_dep -> ()
      | D.Dep { dist; exact } ->
        let kind =
          match (fst_store, snd_store) with
          | true, false -> G.MF
          | false, true -> G.MA
          | true, true -> G.MO
          | false, false -> assert false
        in
        let e =
          { G.e_src = nf.G.n_id; e_dst = ns.G.n_id; e_kind = kind; e_dist = dist }
        in
        G.add_edge g ~dist kind ~src:nf.G.n_id ~dst:ns.G.n_id;
        if not exact then Hashtbl.replace ambiguous e ()
  in
  let rec pairs = function
    | [] -> ()
    | ((nf, _) as x) :: rest ->
      (* self dependence (only meaningful for stores) *)
      if G.is_store nf then add_dep x x false;
      List.iter
        (fun y ->
          add_dep x y true;
          add_dep y x false)
        rest;
      pairs rest
  in
  pairs mems;
  let site_node = Array.of_list (List.rev !site_nodes) in
  {
    graph = g;
    site_node;
    ambiguous;
    operands;
    sems;
    mem_index;
    scalar_update =
      Hashtbl.fold (fun v id acc -> (v, id) :: acc) scalar_movs []
      |> List.sort compare;
    kernel = k;
  }

let node_of_site t s = G.node t.graph t.site_node.(s)

let site_of_node t id =
  let rec find i =
    if i >= Array.length t.site_node then None
    else if t.site_node.(i) = id then Some i
    else find (i + 1)
  in
  find 0

let best_unroll_factor ~nxi_bytes ~max_factor (k : Ast.kernel) =
  if nxi_bytes <= 0 then invalid_arg "best_unroll_factor: nxi_bytes";
  let sites = Vliw_ir.Sites.of_kernel k in
  let stable u =
    List.fold_left
      (fun acc (s : Vliw_ir.Sites.site) ->
        match affine_of_expr k s.site_index with
        | Some (a, _) ->
          let byte_stride = a * Ast.ty_bytes s.site_ty * u in
          if byte_stride mod nxi_bytes = 0 then acc + 1 else acc
        | None -> acc)
      0 sites
  in
  let best = ref 1 and best_count = ref (stable 1) in
  for u = 2 to max_factor do
    if k.Ast.k_trip mod u = 0 then (
      let c = stable u in
      if c > !best_count then (
        best := u;
        best_count := c))
  done;
  !best
