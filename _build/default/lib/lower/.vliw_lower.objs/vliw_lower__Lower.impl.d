lib/lower/lower.ml: Array Ast Hashtbl Int64 List Option Pp Sem Typecheck Vliw_alias Vliw_ddg Vliw_ir
