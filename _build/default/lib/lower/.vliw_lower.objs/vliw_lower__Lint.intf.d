lib/lower/lint.mli: Format Vliw_ir
