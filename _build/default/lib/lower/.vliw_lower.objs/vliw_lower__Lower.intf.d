lib/lower/lower.mli: Hashtbl Vliw_ddg Vliw_ir
