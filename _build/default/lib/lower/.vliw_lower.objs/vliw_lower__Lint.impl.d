lib/lower/lint.ml: Format List Lower Printf Vliw_ir
