let sccs g =
  let index = Hashtbl.create 32 in
  let low = Hashtbl.create 32 in
  let on_stack = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (e : Graph.edge) ->
        let w = e.e_dst in
        if not (Hashtbl.mem index w) then (
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w)))
        else if Option.value (Hashtbl.find_opt on_stack w) ~default:false then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (Graph.succs g v);
    if Hashtbl.find low v = Hashtbl.find index v then (
      let comp = ref [] in
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          comp := w :: !comp;
          if w = v then continue := false
      done;
      comps := List.sort compare !comp :: !comps)
  in
  List.iter
    (fun (n : Graph.node) -> if not (Hashtbl.mem index n.n_id) then strongconnect n.n_id)
    (Graph.nodes g);
  List.rev !comps

let reachable_same_iter g ~src ~dst =
  let seen = Hashtbl.create 16 in
  let rec go v =
    v = dst
    || (not (Hashtbl.mem seen v))
       && (Hashtbl.replace seen v ();
           List.exists
             (fun (e : Graph.edge) -> e.e_dist = 0 && go e.e_dst)
             (Graph.succs g v))
  in
  go src

let undirected_components g ~keep =
  let parent = Hashtbl.create 32 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some (-1) -> x
    | Some p ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)
  in
  List.iter
    (fun (e : Graph.edge) -> if keep e then union e.e_src e.e_dst)
    (Graph.edges g);
  let buckets = Hashtbl.create 32 in
  List.iter
    (fun (n : Graph.node) ->
      let r = find n.n_id in
      Hashtbl.replace buckets r
        (n.n_id :: Option.value (Hashtbl.find_opt buckets r) ~default:[]))
    (Graph.nodes g);
  Hashtbl.fold (fun _ ids acc -> List.sort compare ids :: acc) buckets []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let topo_order g =
  let indeg = Hashtbl.create 32 in
  List.iter (fun (n : Graph.node) -> Hashtbl.replace indeg n.n_id 0) (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      if e.e_dist = 0 then
        Hashtbl.replace indeg e.e_dst (Hashtbl.find indeg e.e_dst + 1))
    (Graph.edges g);
  let ready =
    ref
      (List.filter_map
         (fun (n : Graph.node) ->
           if Hashtbl.find indeg n.n_id = 0 then Some n.n_id else None)
         (Graph.nodes g))
  in
  let order = ref [] in
  while !ready <> [] do
    let v = List.hd !ready in
    ready := List.tl !ready;
    order := v :: !order;
    List.iter
      (fun (e : Graph.edge) ->
        if e.e_dist = 0 then (
          let d = Hashtbl.find indeg e.e_dst - 1 in
          Hashtbl.replace indeg e.e_dst d;
          if d = 0 then ready := e.e_dst :: !ready))
      (Graph.succs g v)
  done;
  List.rev !order

(* Bellman-Ford longest paths on the reversed graph: height.(v) = max over
   edges v->w of weight(e) + height(w), iterated to fixpoint. At a feasible
   II no positive cycle exists, so the fixpoint is reached within |V|
   rounds. *)
let longest_path_lengths g ~ii ~edge_lat =
  let h = Hashtbl.create 32 in
  let ns = Graph.nodes g in
  List.iter (fun (n : Graph.node) -> Hashtbl.replace h n.n_id 0) ns;
  let nv = List.length ns in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= nv + 1 do
    changed := false;
    incr rounds;
    List.iter
      (fun (n : Graph.node) ->
        List.iter
          (fun (e : Graph.edge) ->
            let w = edge_lat e - (ii * e.e_dist) in
            let cand = w + Hashtbl.find h e.e_dst in
            if cand > Hashtbl.find h n.n_id then (
              Hashtbl.replace h n.n_id cand;
              changed := true))
          (Graph.succs g n.n_id))
      ns
  done;
  fun id -> Hashtbl.find h id

let longest_path_depths g ~ii ~edge_lat =
  let d = Hashtbl.create 32 in
  let ns = Graph.nodes g in
  List.iter (fun (n : Graph.node) -> Hashtbl.replace d n.n_id 0) ns;
  let nv = List.length ns in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= nv + 1 do
    changed := false;
    incr rounds;
    List.iter
      (fun (n : Graph.node) ->
        List.iter
          (fun (e : Graph.edge) ->
            let w = edge_lat e - (ii * e.e_dist) in
            let cand = Hashtbl.find d e.e_src + w in
            if cand > Hashtbl.find d e.e_dst then (
              Hashtbl.replace d e.e_dst cand;
              changed := true))
          (Graph.succs g n.n_id))
      ns
  done;
  fun id -> Hashtbl.find d id

(* A cycle has positive weight at ii iff sum(lat) - ii * sum(dist) > 0.
   Scan ii upward from 1; detect positive cycles with Bellman-Ford over
   -weights (negative cycle detection). Loop recurrences are short, so the
   scan terminates quickly; the upper bound is sum of all latencies. *)
let has_positive_cycle g ~ii ~edge_lat =
  let dist = Hashtbl.create 32 in
  let ns = Graph.nodes g in
  List.iter (fun (n : Graph.node) -> Hashtbl.replace dist n.n_id 0) ns;
  let nv = List.length ns in
  let relax () =
    let changed = ref false in
    List.iter
      (fun (n : Graph.node) ->
        List.iter
          (fun (e : Graph.edge) ->
            let w = edge_lat e - (ii * e.e_dist) in
            let cand = Hashtbl.find dist n.n_id + w in
            if cand > Hashtbl.find dist e.e_dst then (
              Hashtbl.replace dist e.e_dst cand;
              changed := true))
          (Graph.succs g n.n_id))
      ns;
    !changed
  in
  let changed = ref true in
  let i = ref 0 in
  while !changed && !i < nv do
    changed := relax ();
    incr i
  done;
  (* If still relaxable after |V| rounds, a positive cycle exists. *)
  !changed && relax ()

let rec_mii g ~edge_lat =
  let ub =
    1 + List.fold_left (fun acc e -> acc + max 1 (edge_lat e)) 0 (Graph.edges g)
  in
  let rec go ii =
    if ii >= ub then ub
    else if has_positive_cycle g ~ii ~edge_lat then go (ii + 1)
    else ii
  in
  go 1
