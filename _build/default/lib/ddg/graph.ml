type edge_kind = RF | MF | MA | MO | SYNC

let edge_kind_name = function
  | RF -> "RF" | MF -> "MF" | MA -> "MA" | MO -> "MO" | SYNC -> "SYNC"

let is_mem_kind = function MF | MA | MO -> true | RF | SYNC -> false

type mem_ref = {
  mr_array : string;
  mr_affine : (int * int) option;
  mr_bytes : int;
  mr_float : bool;
  mr_site : int;
}

type opcode =
  | Load of mem_ref
  | Store of mem_ref
  | Arith of { aname : string; fu_int : bool; latency : int }
  | Fake

type node = {
  n_id : int;
  n_op : opcode;
  n_seq : int;
  n_orig : int;
  n_replica : int option;
}

type edge = { e_src : int; e_dst : int; e_kind : edge_kind; e_dist : int }

type t = {
  tbl : (int, node) Hashtbl.t;
  out_e : (int, edge list) Hashtbl.t;
  in_e : (int, edge list) Hashtbl.t;
  mutable next : int;
}

let create () =
  { tbl = Hashtbl.create 32; out_e = Hashtbl.create 32; in_e = Hashtbl.create 32;
    next = 0 }

let copy t =
  { tbl = Hashtbl.copy t.tbl; out_e = Hashtbl.copy t.out_e;
    in_e = Hashtbl.copy t.in_e; next = t.next }

let node t id =
  match Hashtbl.find_opt t.tbl id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Graph.node: no node %d" id)

let add_node t ?seq ?orig ?replica op =
  let id = t.next in
  t.next <- id + 1;
  let n =
    {
      n_id = id;
      n_op = op;
      n_seq = Option.value seq ~default:id;
      n_orig = Option.value orig ~default:id;
      n_replica = replica;
    }
  in
  Hashtbl.replace t.tbl id n;
  Hashtbl.replace t.out_e id [];
  Hashtbl.replace t.in_e id [];
  n

let succs t id = Option.value (Hashtbl.find_opt t.out_e id) ~default:[]
let preds t id = Option.value (Hashtbl.find_opt t.in_e id) ~default:[]

let add_edge t ?(dist = 0) kind ~src ~dst =
  if dist < 0 then invalid_arg "Graph.add_edge: negative distance";
  if not (Hashtbl.mem t.tbl src) then
    invalid_arg (Printf.sprintf "Graph.add_edge: no source node %d" src);
  if not (Hashtbl.mem t.tbl dst) then
    invalid_arg (Printf.sprintf "Graph.add_edge: no sink node %d" dst);
  let e = { e_src = src; e_dst = dst; e_kind = kind; e_dist = dist } in
  let out = succs t src in
  if not (List.mem e out) then (
    Hashtbl.replace t.out_e src (e :: out);
    Hashtbl.replace t.in_e dst (e :: preds t dst))

let set_replica t id replica =
  Hashtbl.replace t.tbl id { (node t id) with n_replica = replica }

let remove_edge t e =
  Hashtbl.replace t.out_e e.e_src (List.filter (( <> ) e) (succs t e.e_src));
  Hashtbl.replace t.in_e e.e_dst (List.filter (( <> ) e) (preds t e.e_dst))

let mem_node t id =
  match (node t id).n_op with Load _ | Store _ -> true | _ -> false

let node_count t = Hashtbl.length t.tbl

let nodes t =
  Hashtbl.fold (fun _ n acc -> n :: acc) t.tbl []
  |> List.sort (fun a b -> compare a.n_id b.n_id)

let edges t =
  Hashtbl.fold (fun _ es acc -> es @ acc) t.out_e []
  |> List.sort compare

let mem_refs t =
  List.filter_map
    (fun n ->
      match n.n_op with
      | Load mr | Store mr -> Some (n, mr)
      | Arith _ | Fake -> None)
    (nodes t)

let is_load n = match n.n_op with Load _ -> true | _ -> false
let is_store n = match n.n_op with Store _ -> true | _ -> false

let has_mem_dep t id =
  List.exists (fun e -> is_mem_kind e.e_kind) (succs t id)
  || List.exists (fun e -> is_mem_kind e.e_kind) (preds t id)

let op_latency n ~assumed =
  match n.n_op with
  | Load _ | Store _ -> assumed n.n_id
  | Arith a -> a.latency
  | Fake -> 1

let fu_kind n =
  match n.n_op with
  | Load _ | Store _ -> Vliw_arch.Machine.Mem_fu
  | Arith a -> if a.fu_int then Vliw_arch.Machine.Int_fu else Vliw_arch.Machine.Fp_fu
  | Fake -> Vliw_arch.Machine.Int_fu

let op_name = function
  | Load mr -> Printf.sprintf "load.%d %s" mr.mr_bytes mr.mr_array
  | Store mr -> Printf.sprintf "store.%d %s" mr.mr_bytes mr.mr_array
  | Arith a -> a.aname
  | Fake -> "fake"

(* Cycle detection restricted to distance-0 edges: such a cycle cannot be
   scheduled at any II. *)
let zero_dist_acyclic t =
  let color = Hashtbl.create 16 in
  (* 0 = white (absent), 1 = grey, 2 = black *)
  let rec visit id =
    match Hashtbl.find_opt color id with
    | Some 1 -> false
    | Some _ -> true
    | None ->
      Hashtbl.replace color id 1;
      let ok =
        List.for_all
          (fun e -> e.e_dist <> 0 || visit e.e_dst)
          (succs t id)
      in
      Hashtbl.replace color id 2;
      ok
  in
  List.for_all (fun n -> visit n.n_id) (nodes t)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_edge e =
    if not (Hashtbl.mem t.tbl e.e_src) then err "edge from missing node %d" e.e_src
    else if not (Hashtbl.mem t.tbl e.e_dst) then
      err "edge to missing node %d" e.e_dst
    else if e.e_dist < 0 then err "negative distance on %d->%d" e.e_src e.e_dst
    else
      let s = node t e.e_src and d = node t e.e_dst in
      match e.e_kind with
      | MF ->
        if is_store s && is_load d then Ok ()
        else err "MF edge %d->%d is not store->load" e.e_src e.e_dst
      | MA ->
        if is_load s && is_store d then Ok ()
        else err "MA edge %d->%d is not load->store" e.e_src e.e_dst
      | MO ->
        if is_store s && is_store d then Ok ()
        else err "MO edge %d->%d is not store->store" e.e_src e.e_dst
      | SYNC ->
        if is_store d then Ok ()
        else err "SYNC edge %d->%d does not sink at a store" e.e_src e.e_dst
      | RF ->
        if is_store s then err "RF edge %d->%d sourced at a store" e.e_src e.e_dst
        else if e.e_src = e.e_dst && e.e_dist = 0 then
          err "RF self-edge at distance 0 on node %d" e.e_src
        else Ok ()
  in
  let rec all = function
    | [] -> Ok ()
    | e :: rest -> ( match check_edge e with Ok () -> all rest | Error _ as r -> r)
  in
  match all (edges t) with
  | Error _ as r -> r
  | Ok () ->
    if zero_dist_acyclic t then Ok ()
    else err "intra-iteration (distance-0) dependence cycle"

let pp ppf t =
  Format.fprintf ppf "DDG: %d nodes@." (node_count t);
  List.iter
    (fun n ->
      Format.fprintf ppf "  n%-3d seq=%-3d %s%s@." n.n_id n.n_seq
        (op_name n.n_op)
        (match n.n_replica with
        | None -> ""
        | Some c -> Printf.sprintf " [replica->cluster %d]" c))
    (nodes t);
  List.iter
    (fun e ->
      Format.fprintf ppf "  n%d -%s(d=%d)-> n%d@." e.e_src
        (edge_kind_name e.e_kind) e.e_dist e.e_dst)
    (edges t)
