(** Data Dependence Graph of one loop body (paper Section 3.1, Figure 3).

    Nodes are machine operations of a single iteration; edges carry a
    dependence kind and an iteration {e distance} ([d] in the paper's
    figures: the dependence goes from the source in iteration [k] to the
    sink in iteration [k + d]).

    Dependence kinds:
    - [RF] register flow — the sink consumes the value the source produces;
    - [MF]/[MA]/[MO] memory flow / anti / output — added by the compiler's
      disambiguation between possibly-aliasing memory operations (true and
      {e unresolved false} dependences alike, Section 3.1);
    - [SYNC] — introduced by the DDGT transformation: the sink (a store)
      must be scheduled at or after the source (a consumer of a load),
      Section 3.3. *)

type edge_kind = RF | MF | MA | MO | SYNC

val edge_kind_name : edge_kind -> string

val is_mem_kind : edge_kind -> bool
(** [MF], [MA] or [MO] — the kinds that define memory dependent chains. *)

type mem_ref = {
  mr_array : string;  (** array accessed *)
  mr_affine : (int * int) option;
      (** [Some (scale, offset)]: byte address is
          [array base + scale * iteration + offset]; [None] for indirect
          (register-addressed) accesses *)
  mr_bytes : int;  (** access width in bytes *)
  mr_float : bool;  (** float element class (value truncation semantics) *)
  mr_site : int;  (** canonical static site id ({!Vliw_ir.Sites}) *)
}

type opcode =
  | Load of mem_ref
  | Store of mem_ref
  | Arith of { aname : string; fu_int : bool; latency : int }
      (** [fu_int]: executes on the integer FU, otherwise FP *)
  | Fake
      (** fake consumer created by load-store synchronization
          (an [add r0 = r0 + rX]; integer FU, latency 1) *)

type node = {
  n_id : int;
  n_op : opcode;
  n_seq : int;
      (** sequential program order position; replicas keep the original's *)
  n_orig : int;  (** id of the original node; [n_id] unless a replica *)
  n_replica : int option;
      (** [Some c]: store-replication instance pinned to cluster [c] *)
}

type edge = { e_src : int; e_dst : int; e_kind : edge_kind; e_dist : int }

type t
(** Mutable graph. *)

(** {1 Construction} *)

val create : unit -> t
val copy : t -> t

val add_node : t -> ?seq:int -> ?orig:int -> ?replica:int -> opcode -> node
(** Fresh node. [seq] defaults to the fresh id (creation order = program
    order when building from source). *)

val add_edge : t -> ?dist:int -> edge_kind -> src:int -> dst:int -> unit
(** Add an edge (distance defaults to 0). Duplicate edges (same endpoints,
    kind and distance) are not added twice. @raise Invalid_argument if
    either endpoint does not exist or the distance is negative. *)

val remove_edge : t -> edge -> unit
(** Remove one edge (no-op if absent). *)

val set_replica : t -> int -> int option -> unit
(** Pin (or unpin) a node to a cluster as a store-replication instance.
    Used by the DDGT transform to mark the original store as instance 0. *)

(** {1 Observation} *)

val node : t -> int -> node
val mem_node : t -> int -> bool
val node_count : t -> int
val nodes : t -> node list
(** In increasing id order. *)

val edges : t -> edge list
val succs : t -> int -> edge list
val preds : t -> int -> edge list
val mem_refs : t -> (node * mem_ref) list
(** Memory nodes (loads and stores) in increasing id order. *)

val is_load : node -> bool
val is_store : node -> bool

val has_mem_dep : t -> int -> bool
(** The node has at least one incident MF/MA/MO edge. *)

val op_latency : node -> assumed:(int -> int) -> int
(** Latency of the value produced by a node: [assumed id] for memory nodes
    (the scheduler's assumed access latency), the opcode latency for
    arithmetic, 1 for [Fake]. *)

val fu_kind : node -> Vliw_arch.Machine.fu_kind
(** Functional unit class the node occupies. *)

(** {1 Validation} *)

val validate : t -> (unit, string) result
(** Structural invariants: endpoints exist; non-negative distances; edge
    kinds consistent with endpoint opcodes (MF: store to load; MA: load to
    store; MO: store to store; SYNC sink is a store; RF source produces a
    value — not a store); no RF self-edge at distance 0; the distance-0
    subgraph is acyclic (an intra-iteration dependence cycle is
    unschedulable). *)

val pp : Format.formatter -> t -> unit
val op_name : opcode -> string
