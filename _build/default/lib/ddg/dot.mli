(** Graphviz export of DDGs (handy for eyeballing the Figure 3 -> Figure 5
    transformation; consumed by the [vliwc --dump-dot] CLI). *)

val to_string : ?name:string -> Graph.t -> string
(** DOT digraph: memory nodes as boxes, replicas dashed, edge labels
    "KIND d=n" (distance omitted when 0), SYNC edges dotted. *)

val write_file : string -> Graph.t -> unit
