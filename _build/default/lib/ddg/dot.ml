let esc s = String.concat "\\\"" (String.split_on_char '"' s)

let to_string ?(name = "ddg") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  List.iter
    (fun (n : Graph.node) ->
      let shape =
        match n.n_op with
        | Graph.Load _ | Graph.Store _ -> "box"
        | Graph.Arith _ -> "ellipse"
        | Graph.Fake -> "diamond"
      in
      let style = match n.n_replica with None -> "solid" | Some _ -> "dashed" in
      let extra =
        match n.n_replica with
        | None -> ""
        | Some c -> Printf.sprintf "\\n[inst@cl%d]" c
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"n%d: %s%s\", shape=%s, style=%s];\n"
           n.n_id n.n_id
           (esc (Graph.op_name n.n_op))
           extra shape style))
    (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      let label =
        if e.e_dist = 0 then Graph.edge_kind_name e.e_kind
        else Printf.sprintf "%s d=%d" (Graph.edge_kind_name e.e_kind) e.e_dist
      in
      let style = if e.e_kind = Graph.SYNC then ", style=dotted" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"%s];\n" e.e_src e.e_dst label
           style))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
