lib/ddg/graph.ml: Format Hashtbl List Option Printf Vliw_arch
