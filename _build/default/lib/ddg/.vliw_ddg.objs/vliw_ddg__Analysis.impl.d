lib/ddg/analysis.ml: Graph Hashtbl List Option
