lib/ddg/dot.ml: Buffer Fun Graph List Printf String
