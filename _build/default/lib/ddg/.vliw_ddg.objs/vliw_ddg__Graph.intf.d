lib/ddg/graph.mli: Format Vliw_arch
