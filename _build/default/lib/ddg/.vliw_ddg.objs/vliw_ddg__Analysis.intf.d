lib/ddg/analysis.mli: Graph
