(** Graph analyses over DDGs used by the transformations and the
    scheduler. *)

val sccs : Graph.t -> int list list
(** Strongly connected components (Tarjan), each as a list of node ids, in
    reverse topological order of the condensation. All edge kinds and
    distances participate (a loop-carried edge still closes a recurrence). *)

val reachable_same_iter : Graph.t -> src:int -> dst:int -> bool
(** Is there a dependence path from [src] to [dst] using only distance-0
    edges? This is the "dependent on S" test of the DDGT pseudo-code: a
    SYNC edge closing such a path would create an impossible
    (intra-iteration) cycle. *)

val undirected_components : Graph.t -> keep:(Graph.edge -> bool) -> int list list
(** Connected components of the undirected graph restricted to edges
    satisfying [keep], singleton components included, each sorted by id,
    components ordered by smallest member. *)

val topo_order : Graph.t -> int list
(** Topological order of the distance-0 subgraph (valid for any DDG that
    passes {!Graph.validate}). *)

val longest_path_lengths :
  Graph.t -> ii:int -> edge_lat:(Graph.edge -> int) -> (int -> int)
(** Height of each node: the longest weighted path from the node to any
    sink, where an edge weighs [edge_lat e - ii * dist]. Heights are the
    classic modulo-scheduling priority. Requires that no cycle has positive
    weight at this [ii] (guaranteed for [ii >= rec_mii]). *)

val longest_path_depths :
  Graph.t -> ii:int -> edge_lat:(Graph.edge -> int) -> (int -> int)
(** Dual of {!longest_path_lengths}: the longest weighted path {e into}
    each node from any source (its ASAP time at this II, up to an additive
    constant). Same feasibility requirement. *)

val rec_mii : Graph.t -> edge_lat:(Graph.edge -> int) -> int
(** Smallest II at which no dependence cycle has positive weight
    [sum edge_lat - II * sum distances] — the recurrence-constrained
    minimum initiation interval. 1 when the graph is acyclic. *)
