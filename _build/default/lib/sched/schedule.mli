(** Modulo schedule of one loop for the clustered machine.

    Every DDG node gets an issue cycle within the flat (single-iteration)
    schedule and a cluster; iteration [k] of a node issues at
    [cycle + ii * k]. Register values crossing clusters travel as explicit
    {e copy operations} on the register-to-register buses — one copy per
    cross-cluster register-flow edge, scheduled like any other operation
    into a bus slot of the modulo reservation table (these are the
    communication operations of Table 4). *)

type heuristic = Pref_clus | Min_coms
(** The paper's two cluster-assignment heuristics (Section 2.2). *)

val heuristic_name : heuristic -> string

type copy = {
  cp_src : int;  (** producer node whose value is copied *)
  cp_dst : int;  (** consumer node the copy feeds *)
  cp_dist : int;  (** distance of the register-flow edge being covered *)
  cp_from : int;  (** source cluster *)
  cp_to : int;  (** destination cluster *)
  cp_cycle : int;  (** transfer start, in the producer's iteration frame *)
  cp_bus : int;  (** register bus used *)
}

type t = {
  ii : int;  (** initiation interval *)
  machine : Vliw_arch.Machine.t;
  place : (int, int * int) Hashtbl.t;  (** node -> (cycle, cluster) *)
  assumed : (int, int) Hashtbl.t;
      (** memory node -> assumed access latency used while scheduling
          (the cache-sensitive latency assignment, Section 2.2) *)
  copies : copy list;
  length : int;  (** flat schedule span: max issue cycle + 1 *)
}

val cycle_of : t -> int -> int
val cluster_of : t -> int -> int
val assumed_of : t -> int -> int
(** Assumed latency of a memory node (its machine local-hit latency if
    never assigned explicitly). *)

val stage_count : t -> int
(** Number of pipeline stages: [ceil length / ii] (at least 1). *)

val comm_ops : t -> int
(** Number of copy operations = inter-cluster communications per
    iteration. *)

val find_copy : t -> Vliw_ddg.Graph.edge -> copy option
(** The copy covering a cross-cluster register-flow edge, if any. *)

val edge_latency : t -> Vliw_ddg.Graph.t -> Vliw_ddg.Graph.edge -> int
(** The latency an edge imposes on the schedule: assumed latency for RF
    edges out of memory ops, opcode latency for other RF edges, 1 for
    memory-dependence edges (issue-order serialization — the coherence
    guarantee comes from the MDC/DDGT placement, not from timing), 0 for
    SYNC. *)

val validate :
  Vliw_ddg.Graph.t ->
  ?pinned:(int, int) Hashtbl.t ->
  ?grouped:int list list ->
  t ->
  (unit, string) result
(** Full schedule checker, used by tests and after every scheduling run:
    every node placed exactly once within [0, length); replica and [pinned]
    nodes in their clusters; every [grouped] chain in a single cluster;
    per-slot FU capacity and per-slot register-bus capacity respected
    (modulo [ii]); every dependence edge satisfied, with cross-cluster RF
    edges covered by a copy that fits its producer/consumer window. *)

val pp : Format.formatter -> t -> unit
