(** Register pressure of a modulo schedule (MaxLive).

    Clustered VLIW register files are small and per-cluster; the paper's
    companion work (Codina et al., "A Unified Modulo Scheduling and
    Register Allocation Technique") makes pressure a first-class scheduling
    concern. We report it as an analysis: under modulo scheduling at
    initiation interval II, a value defined at cycle [d] and last consumed
    at cycle [e] has [e - d] live cycles, and its instances from successive
    iterations overlap — it occupies a register in every II-slot [s] with
    [d <= t < e] and [t = s (mod II)]. MaxLive of a cluster is the maximum
    over slots of simultaneously live values; it lower-bounds the register
    file size the schedule needs (modulo-variable-expansion style renaming
    assumed).

    Cross-cluster copies are charged to both sides: the source value stays
    live until the copy reads it, and the copy's delivered value is live in
    the destination cluster from its arrival until the consumer reads
    it. *)

val max_live : Vliw_ddg.Graph.t -> Schedule.t -> int array
(** Per-cluster MaxLive. Values with no consumer are charged one cycle of
    liveness (they still occupy a write port/rename slot). *)

val total : Vliw_ddg.Graph.t -> Schedule.t -> int
(** Sum over clusters. *)
