(** The hybrid MDC/DDGT solution sketched in the paper's Further Work
    (Section 6): "the execution time of a loop with both solutions could be
    estimated at compile time and the best solution could be chosen", on a
    per-loop basis (the paper observes loops tend to have 0 or 1 memory
    dependent chain, so loop granularity is as good as anything finer).

    The compile-time estimate mirrors what a compiler could know without
    simulating: schedule the loop both ways and predict

    {v cycles = length + II * (trip - 1) + expected stall v}

    where the expected stall charges every memory operation
    [max 0 (expected latency - assumed latency)] per iteration, the
    expected latency being the profile-weighted mix of local and remote
    hit latencies (the profiled preferred-cluster histogram tells the
    compiler how often the access will be remote from its assigned
    cluster). *)

type choice = Chose_mdc | Chose_ddgt

val choice_name : choice -> string

type result = {
  graph : Vliw_ddg.Graph.t;  (** the chosen technique's graph *)
  constraints : Vliw_core.Chains.constraints;  (** and its constraints *)
  schedule : Schedule.t;  (** the chosen schedule *)
  choice : choice;
  mdc_estimate : int;
  ddgt_estimate : int;
}

val estimate :
  machine:Vliw_arch.Machine.t ->
  pref:(int -> int array option) ->
  trip:int ->
  Vliw_ddg.Graph.t ->
  Schedule.t ->
  int
(** The compile-time cycle estimate described above, exposed for testing
    and for the ablation bench. *)

val choose :
  machine:Vliw_arch.Machine.t ->
  heuristic:Schedule.heuristic ->
  pref_for:(Vliw_ddg.Graph.t -> int -> int array option) ->
  trip:int ->
  Vliw_ddg.Graph.t ->
  (result, string) Stdlib.result
(** Build both candidate compilations of the loop (MDC constraints on the
    original graph; the DDGT transform), schedule each with [heuristic],
    estimate both, and keep the cheaper one. Errors only if {e both}
    candidates fail to schedule. *)
