module G = Vliw_ddg.Graph
module M = Vliw_arch.Machine

(* Charge one live range [d, e) (in flat-schedule cycles) to a cluster's
   per-slot counters. *)
let charge slots ii d e =
  let e = max e (d + 1) in
  for t = d to e - 1 do
    let s = ((t mod ii) + ii) mod ii in
    slots.(s) <- slots.(s) + 1
  done

let max_live g (sched : Schedule.t) =
  let ii = sched.Schedule.ii in
  let machine = sched.Schedule.machine in
  let nclusters = machine.M.clusters in
  let buslat = machine.M.reg_buses.M.bus_latency in
  let slots = Array.init nclusters (fun _ -> Array.make ii 0) in
  let assumed = Schedule.assumed_of sched in
  List.iter
    (fun (n : G.node) ->
      if not (G.is_store n) then (
        let cl = Schedule.cluster_of sched n.n_id in
        let def =
          Schedule.cycle_of sched n.n_id + G.op_latency n ~assumed
        in
        (* same-cluster consumers read at their issue; cross-cluster ones
           read through a copy, which reads the source at its start *)
        let last_use =
          List.fold_left
            (fun acc (e : G.edge) ->
              if e.e_kind <> G.RF then acc
              else if Schedule.cluster_of sched e.e_dst = cl then
                max acc (Schedule.cycle_of sched e.e_dst + (ii * e.e_dist))
              else
                match Schedule.find_copy sched e with
                | Some cp -> max acc cp.Schedule.cp_cycle
                | None -> acc)
            def (G.succs g n.n_id)
        in
        charge slots.(cl) ii def last_use;
        (* the copies' delivered values, charged to the destination *)
        List.iter
          (fun (e : G.edge) ->
            if e.e_kind = G.RF then
              match Schedule.find_copy sched e with
              | Some cp ->
                let arrive = cp.Schedule.cp_cycle + buslat in
                let use =
                  Schedule.cycle_of sched e.e_dst + (ii * e.e_dist)
                in
                charge slots.(cp.Schedule.cp_to) ii arrive use
              | None -> ())
          (G.succs g n.n_id)))
    (G.nodes g);
  Array.map (fun s -> Array.fold_left max 0 s) slots

let total g sched = Array.fold_left ( + ) 0 (max_live g sched)
