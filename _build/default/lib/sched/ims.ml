module G = Vliw_ddg.Graph
module A = Vliw_ddg.Analysis
module M = Vliw_arch.Machine

type ordering = Height | Swing

type ctx = {
  machine : M.t;
  heuristic : Schedule.heuristic;
  ordering : ordering;
  pinned : (int, int) Hashtbl.t;
  grouped : int list list;
  pref : int -> int array option;
  assumed : (int, int) Hashtbl.t;
}

let attempt ctx g ~ii =
  let m = ctx.machine in
  let nclusters = m.M.clusters in
  let buslat = m.M.reg_buses.M.bus_latency in
  let local_hit = M.latency m M.Local_hit in
  let assumed id =
    Option.value (Hashtbl.find_opt ctx.assumed id) ~default:local_hit
  in
  let elat (e : G.edge) =
    match e.e_kind with
    | G.SYNC -> 0
    | G.MF | G.MA | G.MO -> 1
    | G.RF -> G.op_latency (G.node g e.e_src) ~assumed
  in
  let height = A.longest_path_lengths g ~ii ~edge_lat:elat in
  (* Swing-style order: start from the least-mobile node, then grow the
     ordered set through graph adjacency, always taking the least-mobile
     candidate (critical recurrences first, neighbours kept together). *)
  let swing_rank =
    match ctx.ordering with
    | Height -> None
    | Swing ->
      let depth = A.longest_path_depths g ~ii ~edge_lat:elat in
      let cp =
        List.fold_left
          (fun acc (n : G.node) -> max acc (depth n.n_id + height n.n_id))
          0 (G.nodes g)
      in
      let mobility id = cp - height id - depth id in
      let rank : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let remaining = Hashtbl.create 64 in
      List.iter (fun (n : G.node) -> Hashtbl.replace remaining n.n_id ()) (G.nodes g);
      let next_rank = ref 0 in
      let take id =
        Hashtbl.replace rank id !next_rank;
        incr next_rank;
        Hashtbl.remove remaining id
      in
      let best_of ids =
        List.fold_left
          (fun acc id ->
            match acc with
            | None -> Some id
            | Some b ->
              if
                (mobility id, -height id, id) < (mobility b, -height b, b)
              then Some id
              else acc)
          None ids
      in
      while Hashtbl.length remaining > 0 do
        (* candidates adjacent to the ordered set *)
        let adjacent =
          Hashtbl.fold
            (fun id () acc ->
              let touches =
                List.exists
                  (fun (e : G.edge) -> Hashtbl.mem rank e.e_src)
                  (G.preds g id)
                || List.exists
                     (fun (e : G.edge) -> Hashtbl.mem rank e.e_dst)
                     (G.succs g id)
              in
              if touches then id :: acc else acc)
            remaining []
        in
        let pool =
          if adjacent <> [] then adjacent
          else Hashtbl.fold (fun id () acc -> id :: acc) remaining []
        in
        match best_of pool with Some id -> take id | None -> ()
      done;
      Some (fun id -> Hashtbl.find rank id)
  in
  let mrt = Mrt.create m ~ii in
  let place : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let copies : (int * int * int, Schedule.copy) Hashtbl.t = Hashtbl.create 16 in
  let group_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun gi chain -> List.iter (fun id -> Hashtbl.replace group_of id gi) chain)
    ctx.grouped;
  let group_pin : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let pin_of (n : G.node) =
    match n.n_replica with
    | Some c -> Some c
    | None -> (
      match Hashtbl.find_opt ctx.pinned n.n_id with
      | Some c -> Some c
      | None ->
        Option.bind (Hashtbl.find_opt group_of n.n_id)
          (Hashtbl.find_opt group_pin))
  in
  let unscheduled : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (n : G.node) -> Hashtbl.replace unscheduled n.n_id ()) (G.nodes g);
  let last_forced : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let budget = ref (12 * G.node_count g) in

  let pick () =
    match swing_rank with
    | Some rank ->
      Hashtbl.fold
        (fun id () best ->
          match best with
          | Some (brank, _) when brank <= rank id -> best
          | _ -> Some (rank id, id))
        unscheduled None
      |> Option.map snd
    | None ->
      Hashtbl.fold
        (fun id () best ->
          let n = G.node g id in
          let key = (height id, -n.n_seq, -id) in
          match best with
          | Some (bkey, _) when bkey >= key -> best
          | _ -> Some (key, id))
        unscheduled None
      |> Option.map snd
  in

  (* Earliest start assuming same-cluster placement relative to scheduled
     predecessors. *)
  let earliest id =
    List.fold_left
      (fun acc (e : G.edge) ->
        match Hashtbl.find_opt place e.e_src with
        | None -> acc
        | Some (ts, _) -> max acc (ts + elat e - (ii * e.e_dist)))
      0 (G.preds g id)
  in

  let comm_cost id c =
    let cost_edge (e : G.edge) other =
      if e.e_kind <> G.RF then 0
      else
        match Hashtbl.find_opt place other with
        | Some (_, cl) when cl <> c -> 1
        | _ -> 0
    in
    List.fold_left (fun acc e -> acc + cost_edge e e.G.e_src) 0 (G.preds g id)
    + List.fold_left (fun acc e -> acc + cost_edge e e.G.e_dst) 0 (G.succs g id)
  in

  let candidates (n : G.node) =
    match pin_of n with
    | Some c -> [ c ]
    | None ->
      let all = List.init nclusters Fun.id in
      let by_cost () =
        List.stable_sort
          (fun a b ->
            compare
              ((10 * comm_cost n.n_id a) + Mrt.fu_load mrt ~cluster:a, a)
              ((10 * comm_cost n.n_id b) + Mrt.fu_load mrt ~cluster:b, b))
          all
      in
      if ctx.heuristic = Schedule.Pref_clus && G.mem_node g n.n_id then
        match ctx.pref n.n_id with
        | Some h when Array.length h = nclusters ->
          List.stable_sort (fun a b -> compare (-h.(a), a) (-h.(b), b)) all
        | _ -> by_cost ()
      else by_cost ()
  in

  (* Try to place node n at cycle t in cluster c. On success, commits the FU
     slot, any needed copies (bus slots), and the placement. *)
  let try_place (n : G.node) t c =
    let kind = G.fu_kind n in
    if t < 0 || not (Mrt.fu_free mrt ~cycle:t ~cluster:c kind) then false
    else (
      let taken_buses = ref [] in
      let new_copies = ref [] in
      let rollback () =
        List.iter
          (fun (cycle, bus) -> Mrt.bus_release mrt ~cycle ~bus)
          !taken_buses
      in
      let need_copy (e : G.edge) ~src_place ~dst_issue_deadline =
        let ts, _ = src_place in
        let lo = ts + elat e in
        (* the transfer's last busy slot must precede the consumer's issue:
           arrival = start + bus_latency <= deadline *)
        match Mrt.bus_find mrt ~lo ~hi:(dst_issue_deadline - 1) with
        | None -> false
        | Some (cycle, bus) ->
          Mrt.bus_take mrt ~cycle ~bus;
          taken_buses := (cycle, bus) :: !taken_buses;
          new_copies := (e, cycle, bus) :: !new_copies;
          true
      in
      let pred_ok (e : G.edge) =
        match Hashtbl.find_opt place e.e_src with
        | None -> true
        | Some ((ts, cs) as sp) ->
          let deadline = t + (ii * e.e_dist) in
          if e.e_kind <> G.RF || cs = c then ts + elat e <= deadline
          else need_copy e ~src_place:sp ~dst_issue_deadline:deadline
      in
      let succ_ok (e : G.edge) =
        match Hashtbl.find_opt place e.e_dst with
        | None -> true
        | Some (td, cd) ->
          let deadline = td + (ii * e.e_dist) in
          if e.e_kind <> G.RF || cd = c then t + elat e <= deadline
          else need_copy e ~src_place:(t, c) ~dst_issue_deadline:deadline
      in
      if
        List.for_all pred_ok (G.preds g n.n_id)
        && List.for_all succ_ok (G.succs g n.n_id)
      then (
        Mrt.fu_take mrt ~cycle:t ~cluster:c kind;
        Hashtbl.replace place n.n_id (t, c);
        Hashtbl.remove unscheduled n.n_id;
        List.iter
          (fun ((e : G.edge), cycle, bus) ->
            let (_, cs) = Hashtbl.find place e.e_src in
            let (_, cd) = Hashtbl.find place e.e_dst in
            Hashtbl.replace copies
              (e.e_src, e.e_dst, e.e_dist)
              {
                Schedule.cp_src = e.e_src;
                cp_dst = e.e_dst;
                cp_dist = e.e_dist;
                cp_from = cs;
                cp_to = cd;
                cp_cycle = cycle;
                cp_bus = bus;
              })
          !new_copies;
        (match Hashtbl.find_opt group_of n.n_id with
        | Some gi when not (Hashtbl.mem group_pin gi) ->
          Hashtbl.replace group_pin gi c
        | _ -> ());
        true)
      else (
        rollback ();
        false))
  in

  let eject id =
    match Hashtbl.find_opt place id with
    | None -> ()
    | Some (t, c) ->
      Mrt.fu_release mrt ~cycle:t ~cluster:c (G.fu_kind (G.node g id));
      Hashtbl.remove place id;
      Hashtbl.replace unscheduled id ();
      let doomed =
        Hashtbl.fold
          (fun key (cp : Schedule.copy) acc ->
            if cp.cp_src = id || cp.cp_dst = id then (key, cp) :: acc else acc)
          copies []
      in
      List.iter
        (fun (key, (cp : Schedule.copy)) ->
          Mrt.bus_release mrt ~cycle:cp.cp_cycle ~bus:cp.cp_bus;
          Hashtbl.remove copies key)
        doomed;
      decr budget
  in

  (* Force-place n at cycle t cluster c, ejecting whatever stands in the
     way: FU conflictors in the same slot, then any placed neighbour whose
     dependence with n cannot be satisfied. *)
  let force_place (n : G.node) t c =
    let kind = G.fu_kind n in
    (* eject FU conflictors *)
    while not (Mrt.fu_free mrt ~cycle:t ~cluster:c kind) do
      let victim =
        Hashtbl.fold
          (fun id (tv, cv) acc ->
            if
              acc = None && id <> n.n_id && cv = c
              && tv mod ii = t mod ii
              && G.fu_kind (G.node g id) = kind
            then Some id
            else acc)
          place None
      in
      match victim with
      | Some v -> eject v
      | None -> assert false (* slot busy implies a holder exists *)
    done;
    Mrt.fu_take mrt ~cycle:t ~cluster:c kind;
    Hashtbl.replace place n.n_id (t, c);
    Hashtbl.remove unscheduled n.n_id;
    (match Hashtbl.find_opt group_of n.n_id with
    | Some gi when not (Hashtbl.mem group_pin gi) ->
      Hashtbl.replace group_pin gi c
    | _ -> ());
    (* fix up edges to placed neighbours *)
    let fix_edge (e : G.edge) ~n_is_src =
      let other = if n_is_src then e.e_dst else e.e_src in
      if other = n.n_id then (
        (* self edge: check directly; ejecting n would not help *)
        let lat = elat e in
        if lat > ii * e.e_dist then decr budget)
      else
        match Hashtbl.find_opt place other with
        | None -> ()
        | Some (to_, co) ->
          let ok =
            if n_is_src then
              let deadline = to_ + (ii * e.e_dist) in
              if e.e_kind <> G.RF || co = c then t + elat e <= deadline
              else
                match Mrt.bus_find mrt ~lo:(t + elat e) ~hi:(deadline - 1) with
                | None -> false
                | Some (cycle, bus) ->
                  Mrt.bus_take mrt ~cycle ~bus;
                  Hashtbl.replace copies
                    (e.e_src, e.e_dst, e.e_dist)
                    {
                      Schedule.cp_src = e.e_src;
                      cp_dst = e.e_dst;
                      cp_dist = e.e_dist;
                      cp_from = c;
                      cp_to = co;
                      cp_cycle = cycle;
                      cp_bus = bus;
                    };
                  true
            else
              let deadline = t + (ii * e.e_dist) in
              if e.e_kind <> G.RF || co = c then to_ + elat e <= deadline
              else
                match Mrt.bus_find mrt ~lo:(to_ + elat e) ~hi:(deadline - 1) with
                | None -> false
                | Some (cycle, bus) ->
                  Mrt.bus_take mrt ~cycle ~bus;
                  Hashtbl.replace copies
                    (e.e_src, e.e_dst, e.e_dist)
                    {
                      Schedule.cp_src = e.e_src;
                      cp_dst = e.e_dst;
                      cp_dist = e.e_dist;
                      cp_from = co;
                      cp_to = c;
                      cp_cycle = cycle;
                      cp_bus = bus;
                    };
                  true
          in
          if not ok then eject other
    in
    List.iter (fun e -> fix_edge e ~n_is_src:false) (G.preds g n.n_id);
    List.iter (fun e -> fix_edge e ~n_is_src:true) (G.succs g n.n_id)
  in

  let ok = ref true in
  let continue_ = ref true in
  while !continue_ do
    if !budget < 0 then (
      ok := false;
      continue_ := false)
    else
      match pick () with
      | None -> continue_ := false
      | Some id ->
        let n = G.node g id in
        let e0 = earliest id in
        let cands = candidates n in
        let placed = ref false in
        (* memory operations try hard to stay in their first-choice cluster
           (their preferred one, or their chain's) before spilling over:
           locality is worth a few extra cycles of schedule space *)
        let is_mem = G.mem_node g id in
        (* Swing placement: a node whose placed neighbours are all
           successors scans downward from its latest feasible cycle *)
        let downward =
          ctx.ordering = Swing
          && (not
                (List.exists
                   (fun (e : G.edge) -> Hashtbl.mem place e.e_src)
                   (G.preds g id)))
          && List.exists
               (fun (e : G.edge) -> Hashtbl.mem place e.e_dst)
               (G.succs g id)
        in
        let latest =
          List.fold_left
            (fun acc (e : G.edge) ->
              match Hashtbl.find_opt place e.e_dst with
              | None -> acc
              | Some (td, _) -> min acc (td + (ii * e.e_dist) - elat e))
            max_int (G.succs g id)
        in
        List.iteri
          (fun ci c ->
            if not !placed then
              let span =
                if ci = 0 && is_mem then (3 * ii) + buslat else ii + buslat
              in
              if downward && latest < max_int then (
                let t = ref latest in
                while (not !placed) && !t >= max 0 (latest - span) do
                  if try_place n !t c then placed := true;
                  decr t
                done)
              else
                let t = ref e0 in
                while (not !placed) && !t <= e0 + span do
                  if try_place n !t c then placed := true;
                  incr t
                done)
          cands;
        if not !placed then (
          let c = List.hd cands in
          let tf =
            max e0
              (match Hashtbl.find_opt last_forced id with
              | Some prev -> prev + 1
              | None -> e0)
          in
          Hashtbl.replace last_forced id tf;
          decr budget;
          force_place n tf c)
  done;
  if not !ok then None
  else (
    let length =
      1 + Hashtbl.fold (fun _ (t, _) acc -> max acc t) place 0
    in
    Some
      {
        Schedule.ii;
        machine = m;
        place;
        assumed = Hashtbl.copy ctx.assumed;
        copies = Hashtbl.fold (fun _ c acc -> c :: acc) copies [];
        length;
      })
