(** Modulo reservation table: functional-unit slots per (cycle mod II,
    cluster, FU kind) and register-bus slots per (cycle mod II, bus).

    A copy occupies one bus for [bus_latency] consecutive slots. Memory
    buses are {e not} reserved here: their latency is non-deterministic and
    runtime-arbitrated (paper Section 2.3 footnote 2); only the simulator
    models them. *)

type t

val create : Vliw_arch.Machine.t -> ii:int -> t

val fu_free : t -> cycle:int -> cluster:int -> Vliw_arch.Machine.fu_kind -> bool
val fu_take : t -> cycle:int -> cluster:int -> Vliw_arch.Machine.fu_kind -> unit
val fu_release : t -> cycle:int -> cluster:int -> Vliw_arch.Machine.fu_kind -> unit

val fu_load : t -> cluster:int -> int
(** Total FU reservations currently held in a cluster (workload-balance
    signal for MinComs). *)

val bus_find : t -> lo:int -> hi:int -> (int * int) option
(** Earliest [(cycle, bus)] with [lo <= cycle] and [cycle + bus_latency - 1
    <= hi] whose slots are all free. Scans at most II distinct start cycles
    (occupancy is periodic). *)

val bus_take : t -> cycle:int -> bus:int -> unit
val bus_release : t -> cycle:int -> bus:int -> unit
