(** Iterative modulo scheduling for the clustered machine, at a fixed II.

    Operation-driven list scheduling with ejection (Rau-style IMS), extended
    with cluster assignment and register-bus reservation:

    - operations are placed in height-priority order;
    - the cluster of an operation is (a) its hard pin (DDGT replica
      instance, MDC chain under PrefClus), (b) its chain's cluster once the
      chain's first member has been placed (MDC under MinComs), (c) its
      preferred cluster (PrefClus, memory operations), or (d) the cluster
      minimising cross-cluster register communications, workload balance
      breaking ties (MinComs, and non-memory operations under either
      heuristic — paper Section 2.2);
    - a cross-cluster register-flow edge requires a copy operation holding a
      register bus for [bus_latency] slots inside the producer/consumer
      window; failure to find a bus slot fails the placement;
    - when no slot works, the operation is force-placed and conflicting
      operations are ejected, within a budget; budget exhaustion fails the
      attempt and the driver retries at II + 1. *)

(** Node-ordering strategy. [Height] is classic IMS priority (longest path
    to a sink). [Swing] approximates Swing Modulo Scheduling (Llosa et
    al.): nodes are ordered adjacency-first from the least-mobile
    (most critical) ones outward, and a node whose already-placed
    neighbours are all {e successors} is placed scanning {e downward} from
    its latest feasible cycle — keeping values close to their consumers
    and live ranges short. *)
type ordering = Height | Swing

type ctx = {
  machine : Vliw_arch.Machine.t;
  heuristic : Schedule.heuristic;
  ordering : ordering;
  pinned : (int, int) Hashtbl.t;  (** hard cluster pins (besides replicas) *)
  grouped : int list list;  (** chains scheduled into one cluster *)
  pref : int -> int array option;  (** profiled preferred-cluster histograms *)
  assumed : (int, int) Hashtbl.t;  (** memory node -> assumed latency *)
}

val attempt : ctx -> Vliw_ddg.Graph.t -> ii:int -> Schedule.t option
(** One scheduling attempt at the given II. [None] on budget exhaustion. *)
