module M = Vliw_arch.Machine

type t = {
  ii : int;
  machine : M.t;
  fu : (int * int * M.fu_kind, int) Hashtbl.t;
  bus : (int * int, int) Hashtbl.t; (* (slot, bus) -> reservation count *)
  cluster_load : (int, int) Hashtbl.t;
}

let create machine ~ii =
  if ii <= 0 then invalid_arg "Mrt.create: non-positive II";
  { ii; machine; fu = Hashtbl.create 64; bus = Hashtbl.create 64;
    cluster_load = Hashtbl.create 8 }

let cap t kind =
  Option.value (List.assoc_opt kind t.machine.M.fus_per_cluster) ~default:0

let slot t cycle = ((cycle mod t.ii) + t.ii) mod t.ii

let fu_free t ~cycle ~cluster kind =
  let key = (slot t cycle, cluster, kind) in
  Option.value (Hashtbl.find_opt t.fu key) ~default:0 < cap t kind

let bump tbl key delta =
  let v = Option.value (Hashtbl.find_opt tbl key) ~default:0 + delta in
  if v < 0 then invalid_arg "Mrt: released an empty reservation";
  Hashtbl.replace tbl key v

let fu_take t ~cycle ~cluster kind =
  bump t.fu (slot t cycle, cluster, kind) 1;
  bump t.cluster_load cluster 1

let fu_release t ~cycle ~cluster kind =
  bump t.fu (slot t cycle, cluster, kind) (-1);
  bump t.cluster_load cluster (-1)

let fu_load t ~cluster =
  Option.value (Hashtbl.find_opt t.cluster_load cluster) ~default:0

let buslat t = t.machine.M.reg_buses.M.bus_latency
let nbuses t = t.machine.M.reg_buses.M.bus_count

let bus_slots_free t ~cycle ~bus =
  let ok = ref true in
  for k = 0 to buslat t - 1 do
    if Hashtbl.mem t.bus (slot t (cycle + k), bus)
       && Hashtbl.find t.bus (slot t (cycle + k), bus) > 0
    then ok := false
  done;
  !ok

let bus_find t ~lo ~hi =
  let hi_start = hi - buslat t + 1 in
  let last = min hi_start (lo + t.ii - 1) in
  let rec go cycle =
    if cycle > last then None
    else
      let rec try_bus b =
        if b >= nbuses t then None
        else if bus_slots_free t ~cycle ~bus:b then Some (cycle, b)
        else try_bus (b + 1)
      in
      match try_bus 0 with Some r -> Some r | None -> go (cycle + 1)
  in
  if lo > hi_start then None else go lo

let bus_take t ~cycle ~bus =
  for k = 0 to buslat t - 1 do
    bump t.bus (slot t (cycle + k), bus) 1
  done

let bus_release t ~cycle ~bus =
  for k = 0 to buslat t - 1 do
    bump t.bus (slot t (cycle + k), bus) (-1)
  done
