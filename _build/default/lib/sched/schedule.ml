module G = Vliw_ddg.Graph
module M = Vliw_arch.Machine

type heuristic = Pref_clus | Min_coms

let heuristic_name = function Pref_clus -> "PrefClus" | Min_coms -> "MinComs"

type copy = {
  cp_src : int;
  cp_dst : int;
  cp_dist : int;
  cp_from : int;
  cp_to : int;
  cp_cycle : int;
  cp_bus : int;
}

type t = {
  ii : int;
  machine : M.t;
  place : (int, int * int) Hashtbl.t;
  assumed : (int, int) Hashtbl.t;
  copies : copy list;
  length : int;
}

let place_of t id =
  match Hashtbl.find_opt t.place id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Schedule: node %d not placed" id)

let cycle_of t id = fst (place_of t id)
let cluster_of t id = snd (place_of t id)

let assumed_of t id =
  match Hashtbl.find_opt t.assumed id with
  | Some l -> l
  | None -> M.latency t.machine M.Local_hit

let stage_count t = max 1 ((t.length + t.ii - 1) / t.ii)
let comm_ops t = List.length t.copies

let edge_latency t g (e : G.edge) =
  match e.e_kind with
  | G.SYNC -> 0
  | G.MF | G.MA | G.MO -> 1
  | G.RF -> G.op_latency (G.node g e.e_src) ~assumed:(assumed_of t)

let find_copy t (e : G.edge) =
  List.find_opt
    (fun c -> c.cp_src = e.e_src && c.cp_dst = e.e_dst && c.cp_dist = e.e_dist)
    t.copies

let validate g ?(pinned = Hashtbl.create 0) ?(grouped = []) t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let m = t.machine in
  let nodes = G.nodes g in
  let rec first_err = function
    | [] -> Ok ()
    | f :: rest -> ( match f () with Ok () -> first_err rest | e -> e)
  in
  let check_placed () =
    first_err
      (List.map
         (fun (n : G.node) () ->
           match Hashtbl.find_opt t.place n.n_id with
           | None -> err "node %d not placed" n.n_id
           | Some (cy, cl) ->
             if cy < 0 || cy >= t.length then
               err "node %d issue cycle %d outside [0,%d)" n.n_id cy t.length
             else if cl < 0 || cl >= m.M.clusters then
               err "node %d in invalid cluster %d" n.n_id cl
             else Ok ())
         nodes)
  in
  let check_pins () =
    first_err
      (List.map
         (fun (n : G.node) () ->
           match n.n_replica with
           | Some c when Hashtbl.mem t.place n.n_id ->
             let _, cl = place_of t n.n_id in
             if cl <> c then
               err "replica node %d scheduled in cluster %d, pinned to %d"
                 n.n_id cl c
             else Ok ()
           | _ -> Ok ())
         nodes)
  in
  let check_explicit_pins () =
    let bad = ref None in
    Hashtbl.iter
      (fun id c ->
        if !bad = None && Hashtbl.mem t.place id then
          let _, cl = place_of t id in
          if cl <> c then bad := Some (id, cl, c))
      pinned;
    match !bad with
    | Some (id, cl, c) ->
      err "node %d scheduled in cluster %d, constrained to %d" id cl c
    | None -> Ok ()
  in
  let check_groups () =
    first_err
      (List.map
         (fun chain () ->
           match chain with
           | [] -> Ok ()
           | first :: rest ->
             let _, c0 = place_of t first in
             if List.for_all (fun id -> snd (place_of t id) = c0) rest then
               Ok ()
             else err "memory dependent chain %d... split across clusters" first)
         grouped)
  in
  let check_fus () =
    (* capacity per (slot, cluster, fu kind) *)
    let usage = Hashtbl.create 64 in
    List.iter
      (fun (n : G.node) ->
        let cy, cl = place_of t n.n_id in
        let key = (cy mod t.ii, cl, G.fu_kind n) in
        Hashtbl.replace usage key
          (1 + Option.value (Hashtbl.find_opt usage key) ~default:0))
      nodes;
    let cap k =
      Option.value (List.assoc_opt k m.M.fus_per_cluster) ~default:0
    in
    let bad = ref None in
    Hashtbl.iter
      (fun (slot, cl, k) v ->
        if !bad = None && v > cap k then bad := Some (slot, cl, v))
      usage;
    match !bad with
    | Some (slot, cl, v) ->
      err "FU oversubscription: %d ops in slot %d of cluster %d" v slot cl
    | None -> Ok ()
  in
  let check_buses () =
    (* each copy occupies its bus for bus_latency consecutive cycles,
       modulo ii *)
    let usage = Hashtbl.create 64 in
    let bad = ref None in
    List.iter
      (fun c ->
        if c.cp_bus < 0 || c.cp_bus >= m.M.reg_buses.M.bus_count then
          bad := Some (Printf.sprintf "copy uses invalid bus %d" c.cp_bus)
        else
          for k = 0 to m.M.reg_buses.M.bus_latency - 1 do
            let key = ((c.cp_cycle + k) mod t.ii, c.cp_bus) in
            if Hashtbl.mem usage key then
              bad :=
                Some
                  (Printf.sprintf "register bus %d double-booked in slot %d"
                     c.cp_bus (fst key))
            else Hashtbl.replace usage key ()
          done)
      t.copies;
    match !bad with Some msg -> Error msg | None -> Ok ()
  in
  let check_edges () =
    let buslat = m.M.reg_buses.M.bus_latency in
    first_err
      (List.map
         (fun (e : G.edge) () ->
           let tsrc, csrc = place_of t e.e_src in
           let tdst, cdst = place_of t e.e_dst in
           let lat = edge_latency t g e in
           let deadline = tdst + (t.ii * e.e_dist) in
           match e.e_kind with
           | G.RF when csrc <> cdst -> (
             match find_copy t e with
             | None ->
               err "cross-cluster RF edge %d->%d has no copy" e.e_src e.e_dst
             | Some c ->
               if c.cp_from <> csrc || c.cp_to <> cdst then
                 err "copy for edge %d->%d connects wrong clusters" e.e_src
                   e.e_dst
               else if c.cp_cycle < tsrc + lat then
                 err "copy for edge %d->%d starts before data ready" e.e_src
                   e.e_dst
               else if c.cp_cycle + buslat > deadline then
                 err "copy for edge %d->%d arrives after consumer issue"
                   e.e_src e.e_dst
               else Ok ())
           | _ ->
             if tsrc + lat > deadline then
               err "edge %d-%s(d=%d)->%d violated: src@%d lat=%d dst@%d ii=%d"
                 e.e_src (G.edge_kind_name e.e_kind) e.e_dist e.e_dst tsrc lat
                 tdst t.ii
             else Ok ())
         (G.edges g))
  in
  if t.ii <= 0 then err "non-positive II"
  else
    first_err
      [ check_placed; check_pins; check_explicit_pins; check_groups; check_fus;
        check_buses; check_edges ]

let pp ppf t =
  Format.fprintf ppf "II=%d length=%d stages=%d copies=%d@." t.ii t.length
    (stage_count t) (comm_ops t);
  let by_cycle =
    Hashtbl.fold (fun id (cy, cl) acc -> (cy, cl, id) :: acc) t.place []
    |> List.sort compare
  in
  List.iter
    (fun (cy, cl, id) ->
      Format.fprintf ppf "  cycle %-3d cluster %d : n%d@." cy cl id)
    by_cycle;
  List.iter
    (fun c ->
      Format.fprintf ppf "  copy n%d->n%d cl%d->cl%d @%d bus%d@." c.cp_src
        c.cp_dst c.cp_from c.cp_to c.cp_cycle c.cp_bus)
    t.copies
