lib/sched/hybrid.mli: Schedule Stdlib Vliw_arch Vliw_core Vliw_ddg
