lib/sched/ims.mli: Hashtbl Schedule Vliw_arch Vliw_ddg
