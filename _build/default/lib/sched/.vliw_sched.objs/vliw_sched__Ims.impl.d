lib/sched/ims.ml: Array Fun Hashtbl List Mrt Option Schedule Vliw_arch Vliw_ddg
