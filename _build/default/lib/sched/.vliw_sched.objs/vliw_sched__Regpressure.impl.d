lib/sched/regpressure.ml: Array List Schedule Vliw_arch Vliw_ddg
