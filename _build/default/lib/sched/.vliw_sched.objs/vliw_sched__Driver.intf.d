lib/sched/driver.mli: Ims Schedule Vliw_arch Vliw_core Vliw_ddg
