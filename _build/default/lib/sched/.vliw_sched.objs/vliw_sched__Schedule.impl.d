lib/sched/schedule.ml: Format Hashtbl List Option Printf Vliw_arch Vliw_ddg
