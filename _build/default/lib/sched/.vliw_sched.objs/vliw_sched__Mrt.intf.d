lib/sched/mrt.mli: Vliw_arch
