lib/sched/mrt.ml: Hashtbl List Option Vliw_arch
