lib/sched/hybrid.ml: Array Driver Float List Schedule Vliw_arch Vliw_core Vliw_ddg
