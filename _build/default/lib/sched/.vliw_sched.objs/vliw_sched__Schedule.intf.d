lib/sched/schedule.mli: Format Hashtbl Vliw_arch Vliw_ddg
