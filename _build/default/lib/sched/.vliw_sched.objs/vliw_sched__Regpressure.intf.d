lib/sched/regpressure.mli: Schedule Vliw_ddg
