lib/sched/driver.ml: Array Fun Hashtbl Ims List Option Printf Schedule Vliw_arch Vliw_core Vliw_ddg
