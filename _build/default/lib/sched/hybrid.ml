module G = Vliw_ddg.Graph
module M = Vliw_arch.Machine
module Chains = Vliw_core.Chains
module Ddgt = Vliw_core.Ddgt

type choice = Chose_mdc | Chose_ddgt

let choice_name = function Chose_mdc -> "MDC" | Chose_ddgt -> "DDGT"

type result = {
  graph : G.t;
  constraints : Chains.constraints;
  schedule : Schedule.t;
  choice : choice;
  mdc_estimate : int;
  ddgt_estimate : int;
}

let estimate ~machine ~pref ~trip g (s : Schedule.t) =
  let local = M.latency machine M.Local_hit in
  let remote = M.latency machine M.Remote_hit in
  let expected_stall =
    List.fold_left
      (fun acc ((n : G.node), _) ->
        (* only loads stall consumers; stores (and replicated instances,
           which are stores by construction) are fire-and-forget *)
        if not (G.is_load n) then acc
        else
          let cl = Schedule.cluster_of s n.n_id in
          let p_local =
            match pref n.n_id with
            | Some h when Array.length h > cl ->
              let total = Array.fold_left ( + ) 0 h in
              if total = 0 then 0.5 else float_of_int h.(cl) /. float_of_int total
            | _ -> 0.5
          in
          let expected =
            (p_local *. float_of_int local)
            +. ((1. -. p_local) *. float_of_int remote)
          in
          let assumed = float_of_int (Schedule.assumed_of s n.n_id) in
          acc +. Float.max 0. (expected -. assumed))
      0. (G.mem_refs g)
  in
  s.Schedule.length
  + (s.Schedule.ii * (trip - 1))
  + int_of_float (expected_stall *. float_of_int trip)

let choose ~machine ~heuristic ~pref_for ~trip g =
  let pref = pref_for g in
  let mdc_candidate () =
    let constraints =
      match heuristic with
      | Schedule.Pref_clus -> Chains.prefclus g ~pref
      | Schedule.Min_coms -> Chains.mincoms g
    in
    match Driver.run (Driver.request ~heuristic ~constraints ~pref machine) g with
    | Ok s -> Some (g, constraints, s)
    | Error _ -> None
  in
  let ddgt_candidate () =
    let r = Ddgt.transform ~clusters:machine.M.clusters g in
    let pref_t = pref_for r.Ddgt.graph in
    match
      Driver.run (Driver.request ~heuristic ~pref:pref_t machine) r.Ddgt.graph
    with
    | Ok s -> Some (r.Ddgt.graph, Chains.no_constraints (), s, pref_t)
    | Error _ -> None
  in
  match (mdc_candidate (), ddgt_candidate ()) with
  | None, None -> Error "hybrid: neither MDC nor DDGT schedules"
  | Some (g', c, s), None ->
    Ok { graph = g'; constraints = c; schedule = s; choice = Chose_mdc;
         mdc_estimate = estimate ~machine ~pref ~trip g' s; ddgt_estimate = max_int }
  | None, Some (g', c, s, pref_t) ->
    Ok { graph = g'; constraints = c; schedule = s; choice = Chose_ddgt;
         mdc_estimate = max_int;
         ddgt_estimate = estimate ~machine ~pref:pref_t ~trip g' s }
  | Some (gm, cm, sm), Some (gd, cd, sd, pref_t) ->
    let em = estimate ~machine ~pref ~trip gm sm in
    let ed = estimate ~machine ~pref:pref_t ~trip gd sd in
    if em <= ed then
      Ok { graph = gm; constraints = cm; schedule = sm; choice = Chose_mdc;
           mdc_estimate = em; ddgt_estimate = ed }
    else
      Ok { graph = gd; constraints = cd; schedule = sd; choice = Chose_ddgt;
           mdc_estimate = em; ddgt_estimate = ed }
