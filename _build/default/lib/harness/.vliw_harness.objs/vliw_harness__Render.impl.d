lib/harness/render.ml: Ablations Experiments List Printf Runner Vliw_arch Vliw_util Vliw_workloads
