lib/harness/runner.mli: Vliw_arch Vliw_ddg Vliw_ir Vliw_sched Vliw_sim Vliw_workloads
