lib/harness/ablations.mli:
