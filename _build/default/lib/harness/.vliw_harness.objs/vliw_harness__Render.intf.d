lib/harness/render.mli: Ablations Experiments Vliw_arch
