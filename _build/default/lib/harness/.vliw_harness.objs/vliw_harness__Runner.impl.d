lib/harness/runner.ml: Fun List Printf Vliw_arch Vliw_core Vliw_ddg Vliw_ir Vliw_lower Vliw_profile Vliw_sched Vliw_sim Vliw_workloads
