lib/harness/experiments.ml: Hashtbl List Runner Vliw_arch Vliw_core Vliw_ddg Vliw_ir Vliw_lower Vliw_sched Vliw_sim Vliw_workloads
