lib/harness/ablations.ml: Array Experiments List Runner String Vliw_arch Vliw_core Vliw_ir Vliw_lower Vliw_profile Vliw_sched Vliw_sim Vliw_util Vliw_workloads
