lib/harness/experiments.mli: Runner Vliw_arch Vliw_sched Vliw_workloads
