lib/arch/machine.mli: Format
