lib/arch/machine.ml: Format List Printf String
