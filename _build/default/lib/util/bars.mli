(** Stacked horizontal bar charts in ASCII.

    Used by the bench harness to echo the paper's Figure 6/7/9 bar charts:
    each benchmark gets one bar per scheme, segmented into classes
    (e.g. local hits / remote hits / ... or compute / stall). *)

type segment = { label : char; frac : float }
(** One segment of a stacked bar: [frac] of the bar drawn with [label]. *)

val bar : width:int -> segment list -> string
(** Render one stacked bar of [width] characters. Fractions are clamped to
    [\[0, 1\]]; rounding error goes to the last non-empty segment so the bar
    length is exactly [Float.round (width * total)]. *)

val chart :
  width:int -> legend:(char * string) list ->
  (string * segment list) list -> string
(** [chart ~width ~legend rows] renders labeled bars followed by a legend
    line. Row labels are right-padded to a common width. *)
