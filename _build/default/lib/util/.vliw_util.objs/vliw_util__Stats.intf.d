lib/util/stats.mli:
