lib/util/bars.mli:
