lib/util/table.mli:
