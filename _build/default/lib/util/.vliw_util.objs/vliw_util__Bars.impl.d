lib/util/bars.ml: Buffer Float List Printf String
