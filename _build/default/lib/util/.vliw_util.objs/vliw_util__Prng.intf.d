lib/util/prng.mli:
