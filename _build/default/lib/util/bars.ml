type segment = { label : char; frac : float }

let clamp01 f = if f < 0. then 0. else if f > 1. then 1. else f

let bar ~width segs =
  let segs = List.map (fun s -> { s with frac = clamp01 s.frac }) segs in
  let total = List.fold_left (fun acc s -> acc +. s.frac) 0. segs in
  let target = int_of_float (Float.round (float_of_int width *. clamp01 total)) in
  let buf = Buffer.create width in
  let drawn = ref 0 in
  let acc = ref 0. in
  List.iter
    (fun s ->
      acc := !acc +. s.frac;
      let upto = int_of_float (Float.round (float_of_int width *. clamp01 !acc)) in
      let upto = min upto target in
      while !drawn < upto do
        Buffer.add_char buf s.label;
        incr drawn
      done)
    segs;
  Buffer.contents buf

let chart ~width ~legend rows =
  let lw =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (label, segs) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s\n" lw label (bar ~width segs)))
    rows;
  Buffer.add_string buf (Printf.sprintf "%-*s  legend:" lw "");
  List.iter
    (fun (c, name) -> Buffer.add_string buf (Printf.sprintf " %c=%s" c name))
    legend;
  Buffer.add_char buf '\n';
  Buffer.contents buf
