(** Plain-text table rendering for experiment output.

    The bench harness prints every reproduced table/figure as an ASCII table
    (and, for the figures, an additional stacked-bar view) so that the paper's
    rows/series can be compared side by side in a terminal. *)

type align = Left | Right | Center

type t
(** A table under construction. Mutable; rows are rendered in insertion
    order. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title headers] starts a table whose columns are [headers]; each
    header carries the alignment used for its body cells. *)

val add_row : t -> string list -> unit
(** Append a body row. Rows shorter than the header list are padded with
    empty cells; longer rows raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render with box-drawing in plain ASCII. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : float -> string
(** Canonical float cell: two decimals. *)

val cell_pct : float -> string
(** Fraction rendered as a percentage with one decimal, e.g. [0.625] ->
    ["62.5%"]. *)
