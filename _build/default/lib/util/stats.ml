let sum = List.fold_left ( +. ) 0.
let sumi = List.fold_left ( + ) 0

let mean = function
  | [] -> 0.
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let n = float_of_int (List.length xs) in
    exp (sum (List.map log xs) /. n)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted -> List.nth sorted ((List.length sorted - 1) / 2)

let minmax = function
  | [] -> invalid_arg "Stats.minmax: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den
let pct f = f *. 100.
let speedup base x = if x = 0. then 0. else base /. x
