(** Deterministic pseudo-random number generation.

    All randomized components of the reproduction (workload data, adversarial
    bus jitter, property-test inputs that are not driven by QCheck) draw from
    this splitmix64 generator so that every experiment is bit-reproducible
    from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Two generators
    created from the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** A generator statistically independent from the parent's future output;
    advances the parent. *)
