type align = Left | Right | Center

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t cells =
  let n = List.length t.headers and k = List.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than headers";
  let cells = if k < n then cells @ List.init (n - k) (fun _ -> "") else cells in
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let l = fill / 2 in
      String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Sep -> acc
            | Cells cs -> max acc (String.length (List.nth cs i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let hline () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = List.nth widths i and a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  hline ();
  line (List.map (fun _ -> Center) headers) headers;
  hline ();
  List.iter
    (fun row -> match row with Sep -> hline () | Cells cs -> line aligns cs)
    rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_f f = Printf.sprintf "%.2f" f
let cell_pct f = Printf.sprintf "%.1f%%" (100. *. f)
