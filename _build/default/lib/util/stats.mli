(** Small numeric-summary helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list (the paper's AMEAN columns never
    aggregate empty sets, so this keeps harness code total). *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation. *)

val median : float list -> float
(** Median (lower middle for even length). *)

val minmax : float list -> float * float
(** Minimum and maximum; raises [Invalid_argument] on the empty list. *)

val ratio : int -> int -> float
(** [ratio num den] as a float; 0. when [den = 0]. *)

val pct : float -> float
(** Fraction to percentage. *)

val speedup : float -> float -> float
(** [speedup base x] = [base /. x]; infinity-safe (0. when [x = 0.]). *)

val sum : float list -> float
val sumi : int list -> int
