module G = Vliw_ddg.Graph
module M = Vliw_arch.Machine
module S = Vliw_sched.Schedule
module Driver = Vliw_sched.Driver
module Mrt = Vliw_sched.Mrt
module Chains = Vliw_core.Chains
module Ddgt = Vliw_core.Ddgt
module Lower = Vliw_lower.Lower

let mr ?affine ?(bytes = 4) ?(site = 0) arr =
  { G.mr_array = arr; mr_affine = affine; mr_bytes = bytes; mr_float = false;
    mr_site = site }

let arith ?(lat = 1) name = G.Arith { aname = name; fu_int = true; latency = lat }

let sched ?heuristic ?constraints ?pref ?(machine = M.table2) g =
  match Driver.run (Driver.request ?heuristic ?constraints ?pref machine) g with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let assert_valid ?pinned ?grouped g s =
  match S.validate g ?pinned ?grouped s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* --- MRT --- *)

let test_mrt_fu_capacity () =
  let mrt = Mrt.create M.table2 ~ii:2 in
  Alcotest.(check bool) "free" true (Mrt.fu_free mrt ~cycle:0 ~cluster:0 M.Int_fu);
  Mrt.fu_take mrt ~cycle:0 ~cluster:0 M.Int_fu;
  Alcotest.(check bool) "taken" false (Mrt.fu_free mrt ~cycle:0 ~cluster:0 M.Int_fu);
  Alcotest.(check bool) "other slot free" true
    (Mrt.fu_free mrt ~cycle:1 ~cluster:0 M.Int_fu);
  Alcotest.(check bool) "modulo wraps" false
    (Mrt.fu_free mrt ~cycle:2 ~cluster:0 M.Int_fu);
  Mrt.fu_release mrt ~cycle:0 ~cluster:0 M.Int_fu;
  Alcotest.(check bool) "released" true (Mrt.fu_free mrt ~cycle:0 ~cluster:0 M.Int_fu)

let test_mrt_bus_occupancy () =
  let mrt = Mrt.create M.table2 ~ii:4 in
  (* bus transfers take 2 cycles; 4 buses *)
  (match Mrt.bus_find mrt ~lo:0 ~hi:3 with
  | Some (0, 0) -> ()
  | _ -> Alcotest.fail "expected earliest slot on bus 0");
  Mrt.bus_take mrt ~cycle:0 ~bus:0;
  (match Mrt.bus_find mrt ~lo:0 ~hi:1 with
  | Some (0, 1) -> ()
  | other ->
    Alcotest.failf "expected bus 1, got %s"
      (match other with
      | Some (c, b) -> Printf.sprintf "(%d,%d)" c b
      | None -> "none"));
  (* window too narrow for the 2-cycle transfer *)
  Alcotest.(check bool) "narrow window fails" true
    (Mrt.bus_find mrt ~lo:3 ~hi:3 = None)

let test_mrt_bus_modulo_conflict () =
  let m = { M.table2 with M.reg_buses = { M.bus_count = 1; bus_latency = 2 } } in
  let mrt = Mrt.create m ~ii:2 in
  Mrt.bus_take mrt ~cycle:0 ~bus:0;
  (* ii=2 and a 2-cycle transfer saturate the single bus entirely *)
  Alcotest.(check bool) "bus saturated" true (Mrt.bus_find mrt ~lo:0 ~hi:20 = None);
  Mrt.bus_release mrt ~cycle:0 ~bus:0;
  Alcotest.(check bool) "free again" true (Mrt.bus_find mrt ~lo:0 ~hi:20 <> None)

(* --- basic scheduling --- *)

let test_schedule_single_op () =
  let g = G.create () in
  let _ = G.add_node g (arith "add") in
  let s = sched g in
  Alcotest.(check int) "II 1" 1 s.S.ii;
  assert_valid g s

let test_schedule_chain_latency () =
  let g = G.create () in
  let a = G.add_node g (arith ~lat:3 "mul") in
  let b = G.add_node g (arith "add") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  let s = sched g in
  assert_valid g s;
  let ta = S.cycle_of s a.n_id and tb = S.cycle_of s b.n_id in
  Alcotest.(check bool) "latency respected" true (tb >= ta + 3)

let test_schedule_fu_saturation () =
  (* 9 int ops over 4 clusters x 1 int FU: ResMII = 3 *)
  let g = G.create () in
  for k = 0 to 8 do
    ignore (G.add_node g (arith (Printf.sprintf "op%d" k)))
  done;
  let req = Driver.request M.table2 in
  Alcotest.(check int) "ResMII 3" 3 (Driver.res_mii M.table2 g req);
  let s = sched g in
  Alcotest.(check int) "II 3" 3 s.S.ii;
  assert_valid g s

let test_schedule_recurrence () =
  (* acc = acc * k: multiply latency 2, distance 1 -> RecMII 2 *)
  let g = G.create () in
  let a = G.add_node g (arith ~lat:2 "mul") in
  G.add_edge g ~dist:1 G.RF ~src:a.n_id ~dst:a.n_id;
  let req = Driver.request M.table2 in
  Alcotest.(check int) "MII 2" 2 (Driver.mii M.table2 g req);
  let s = sched g in
  Alcotest.(check int) "II 2" 2 s.S.ii;
  assert_valid g s

let test_schedule_pinned_cross_cluster_copy () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (arith "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  let pinned = Hashtbl.create 2 in
  Hashtbl.replace pinned a.n_id 0;
  Hashtbl.replace pinned b.n_id 3;
  let constraints = { Chains.pinned; grouped = [] } in
  let s = sched ~constraints g in
  assert_valid ~pinned g s;
  Alcotest.(check int) "one copy" 1 (S.comm_ops s);
  Alcotest.(check int) "clusters as pinned" 0 (S.cluster_of s a.n_id);
  Alcotest.(check int) "clusters as pinned b" 3 (S.cluster_of s b.n_id);
  (* consumer must wait for producer latency + bus transfer *)
  Alcotest.(check bool) "bus delay respected" true
    (S.cycle_of s b.n_id >= S.cycle_of s a.n_id + 1 + 2)

let test_schedule_same_cluster_no_copy () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (arith "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  let pinned = Hashtbl.create 2 in
  Hashtbl.replace pinned a.n_id 1;
  Hashtbl.replace pinned b.n_id 1;
  let s = sched ~constraints:{ Chains.pinned; grouped = [] } g in
  assert_valid ~pinned g s;
  Alcotest.(check int) "no copies" 0 (S.comm_ops s)

let test_schedule_grouped_chain_single_cluster () =
  let f = (fun () ->
    let g = G.create () in
    let l1 = G.add_node g (G.Load (mr "m" ~site:0)) in
    let l2 = G.add_node g (G.Load (mr "m" ~site:1)) in
    let st = G.add_node g (G.Store (mr "m" ~site:2)) in
    G.add_edge g G.MA ~src:l1.n_id ~dst:st.n_id;
    G.add_edge g G.MA ~src:l2.n_id ~dst:st.n_id;
    (g, [ l1.n_id; l2.n_id; st.n_id ])) ()
  in
  let g, chain = f in
  let grouped = [ chain ] in
  let s = sched ~constraints:{ Chains.pinned = Hashtbl.create 0; grouped } g in
  assert_valid ~grouped g s;
  let cl = S.cluster_of s (List.hd chain) in
  List.iter
    (fun id -> Alcotest.(check int) "same cluster" cl (S.cluster_of s id))
    chain

let test_schedule_mem_dep_order () =
  (* aliased store -> load in the same cluster must issue in order *)
  let g = G.create () in
  let st = G.add_node g (G.Store (mr "m" ~site:0)) in
  let ld = G.add_node g (G.Load (mr "m" ~site:1)) in
  G.add_edge g G.MF ~src:st.n_id ~dst:ld.n_id;
  let s = sched g in
  assert_valid g s;
  Alcotest.(check bool) "store issues strictly first" true
    (S.cycle_of s ld.n_id > S.cycle_of s st.n_id)

let test_schedule_sync_edge_same_cycle_ok () =
  let g = G.create () in
  let c = G.add_node g (arith "cons") in
  let st = G.add_node g (G.Store (mr "m")) in
  G.add_edge g G.SYNC ~src:c.n_id ~dst:st.n_id;
  let s = sched g in
  assert_valid g s;
  Alcotest.(check bool) "store not before consumer" true
    (S.cycle_of s st.n_id >= S.cycle_of s c.n_id)

let test_schedule_prefclus_places_mem_in_pref () =
  let g = G.create () in
  let l = G.add_node g (G.Load (mr "m" ~site:0)) in
  let pref id = if id = l.n_id then Some [| 0; 0; 90; 10 |] else None in
  let s = sched ~heuristic:S.Pref_clus ~pref g in
  assert_valid g s;
  Alcotest.(check int) "load in preferred cluster" 2 (S.cluster_of s l.n_id)

let test_schedule_mincoms_postpass_local_accesses () =
  (* one load with a strong preference and no other constraints: the
     virtual->physical post-pass must land it on its preferred cluster *)
  let g = G.create () in
  let l = G.add_node g (G.Load (mr "m" ~site:0)) in
  let a = G.add_node g (arith "a") in
  G.add_edge g G.RF ~src:l.n_id ~dst:a.n_id;
  let pref id = if id = l.n_id then Some [| 0; 0; 0; 100 |] else None in
  let s = sched ~heuristic:S.Min_coms ~pref g in
  assert_valid g s;
  Alcotest.(check int) "post-pass mapped load home" 3 (S.cluster_of s l.n_id)

let test_latency_assignment_stretches_free_slack () =
  (* load -> consumer, nothing else: raising the load's assumed latency to
     remote miss (15) cannot change II=1, so cache-sensitive assignment
     must pick it *)
  let g = G.create () in
  let l = G.add_node g (G.Load (mr "m")) in
  let c = G.add_node g (arith "use") in
  G.add_edge g G.RF ~src:l.n_id ~dst:c.n_id;
  let s = sched g in
  assert_valid g s;
  Alcotest.(check int) "assumed raised to remote miss" 15 (S.assumed_of s l.n_id);
  Alcotest.(check bool) "consumer placed behind assumed latency" true
    (S.cycle_of s c.n_id >= S.cycle_of s l.n_id + 15)

let test_latency_assignment_respects_recurrence () =
  (* load feeds a store that feeds the load of the next iteration through
     memory (MF d=1): raising latency would raise RecMII, so it must stay
     low for the op on the cycle *)
  let g = G.create () in
  let l = G.add_node g (G.Load (mr "m" ~site:0)) in
  let st = G.add_node g (G.Store (mr "m" ~site:1)) in
  G.add_edge g G.RF ~src:l.n_id ~dst:st.n_id (* store the loaded value *);
  G.add_edge g ~dist:1 G.MF ~src:st.n_id ~dst:l.n_id;
  let s = sched g in
  assert_valid g s;
  (* RF on the cycle: lat(load) + 1 <= ii * 1; ii = lat + 1; with local hit
     ii=2. Any higher assumed latency would force a larger ii. *)
  Alcotest.(check int) "II stays minimal" 2 s.S.ii;
  Alcotest.(check int) "assumed stays local hit" 1 (S.assumed_of s l.n_id)

let test_schedule_fig5_ddgt_graph () =
  (* end to end: Figure 3 -> DDGT -> schedule; replicas must sit in their
     pinned clusters and every SYNC hold *)
  let g = G.create () in
  let n1 = G.add_node g ~seq:1 (G.Load (mr "m" ~site:0)) in
  let n2 = G.add_node g ~seq:2 (G.Load (mr "m" ~site:1)) in
  let n3 = G.add_node g ~seq:3 (G.Store (mr "m" ~site:2)) in
  let n4 = G.add_node g ~seq:4 (G.Store (mr "m" ~site:3)) in
  let n5 = G.add_node g ~seq:5 (arith "add") in
  G.add_edge g G.RF ~src:n1.n_id ~dst:n4.n_id;
  G.add_edge g G.RF ~src:n2.n_id ~dst:n5.n_id;
  G.add_edge g ~dist:1 G.MF ~src:n3.n_id ~dst:n1.n_id;
  G.add_edge g ~dist:1 G.MF ~src:n3.n_id ~dst:n2.n_id;
  G.add_edge g ~dist:1 G.MF ~src:n4.n_id ~dst:n2.n_id;
  G.add_edge g G.MA ~src:n1.n_id ~dst:n3.n_id;
  G.add_edge g G.MA ~src:n1.n_id ~dst:n4.n_id;
  G.add_edge g G.MA ~src:n2.n_id ~dst:n3.n_id;
  G.add_edge g G.MA ~src:n2.n_id ~dst:n4.n_id;
  G.add_edge g G.MO ~src:n3.n_id ~dst:n4.n_id;
  G.add_edge g ~dist:1 G.MO ~src:n4.n_id ~dst:n3.n_id;
  let r = Ddgt.transform ~clusters:4 g in
  let s = sched r.Ddgt.graph in
  assert_valid r.Ddgt.graph s;
  (* every cluster hosts exactly one instance of each replicated store *)
  List.iter
    (fun (orig, insts) ->
      let clusters =
        List.map (S.cluster_of s) (orig :: insts) |> List.sort compare
      in
      Alcotest.(check (list int)) "instances cover all clusters" [ 0; 1; 2; 3 ]
        clusters)
    r.Ddgt.replicas

let test_schedule_mdc_vs_free_ii () =
  (* pinning a big chain into one cluster costs II: 4 independent loads
     free (II 1) vs chained (II 4, one Mem FU) *)
  let mk () =
    let g = G.create () in
    let ids =
      List.init 4 (fun k -> (G.add_node g (G.Load (mr "m" ~site:k))).n_id)
    in
    (g, ids)
  in
  let g_free, _ = mk () in
  let s_free = sched g_free in
  Alcotest.(check int) "free II 1" 1 s_free.S.ii;
  let g_mdc, ids = mk () in
  let pinned = Hashtbl.create 4 in
  List.iter (fun id -> Hashtbl.replace pinned id 2) ids;
  let s_mdc = sched ~constraints:{ Chains.pinned; grouped = [] } g_mdc in
  assert_valid ~pinned g_mdc s_mdc;
  Alcotest.(check int) "pinned II 4" 4 s_mdc.S.ii

let test_schedule_lowered_kernel () =
  let low =
    Lower.lower
      (Vliw_ir.Parser.parse_kernel
         "kernel k { array a : i32[128] = ramp(0,1) array b : i32[128] = zero scalar acc : i64 = 0 trip 64 body { let t = a[i] * 3 b[i] = t acc = acc + t } }")
  in
  let s = sched low.Lower.graph in
  assert_valid low.Lower.graph s

(* --- property: random DAGs schedule and validate on all presets --- *)

let gen_spec =
  QCheck.Gen.(
    let* n = int_range 2 12 in
    let* kinds = list_repeat n (int_range 0 3) in
    let* edges =
      list_size (int_range 0 (2 * n))
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (kinds, edges))

let build_spec (kinds, edges) =
  let g = G.create () in
  let nodes =
    List.mapi
      (fun k kind ->
        let op =
          match kind with
          | 0 -> arith (Printf.sprintf "a%d" k)
          | 1 -> G.Arith { aname = "fmul"; fu_int = false; latency = 2 }
          | 2 -> G.Load (mr "m" ~site:k)
          | _ -> G.Store (mr "m" ~site:k)
        in
        (G.add_node g op).n_id)
      kinds
    |> Array.of_list
  in
  let kind_arr = Array.of_list kinds in
  List.iter
    (fun (a, b) ->
      if a < b then (
        (* RF only out of non-stores *)
        if kind_arr.(a) <> 3 then G.add_edge g G.RF ~src:nodes.(a) ~dst:nodes.(b)
        else
          match (kind_arr.(a), kind_arr.(b)) with
          | 3, 2 -> G.add_edge g G.MF ~src:nodes.(a) ~dst:nodes.(b)
          | 3, 3 -> G.add_edge g G.MO ~src:nodes.(a) ~dst:nodes.(b)
          | _ -> ())
      else if a > b && kind_arr.(a) <> 3 then
        G.add_edge g ~dist:1 G.RF ~src:nodes.(a) ~dst:nodes.(b))
    edges;
  g

let prop_random_dags_schedule machine name =
  QCheck.Test.make ~name ~count:60 (QCheck.make gen_spec) (fun spec ->
      let g = build_spec spec in
      QCheck.assume (G.validate g = Ok ());
      match Driver.run (Driver.request machine) g with
      | Ok s -> S.validate g s = Ok ()
      | Error _ -> false)

let prop_ddgt_then_schedule =
  QCheck.Test.make ~name:"DDGT output schedules and validates" ~count:40
    (QCheck.make gen_spec) (fun spec ->
      let g = build_spec spec in
      QCheck.assume (G.validate g = Ok ());
      (* give every mem op a dependence partner so replication kicks in *)
      let r = Ddgt.transform ~clusters:4 g in
      match Driver.run (Driver.request M.table2) r.Ddgt.graph with
      | Ok s -> S.validate r.Ddgt.graph s = Ok ()
      | Error _ -> false)

(* --- register pressure --- *)

let test_regpressure_simple_chain () =
  (* a -> b in one cluster: one value live for its latency *)
  let g = G.create () in
  let a = G.add_node g (arith ~lat:3 "a") in
  let b = G.add_node g (arith "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  let pinned = Hashtbl.create 2 in
  Hashtbl.replace pinned a.n_id 0;
  Hashtbl.replace pinned b.n_id 0;
  let s = sched ~constraints:{ Chains.pinned; grouped = [] } g in
  let ml = Vliw_sched.Regpressure.max_live g s in
  Alcotest.(check bool) "pressure in cluster 0" true (ml.(0) >= 1);
  Alcotest.(check int) "no pressure in cluster 3" 0 ml.(3)

let test_regpressure_cross_cluster_charges_destination () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (arith "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  let pinned = Hashtbl.create 2 in
  Hashtbl.replace pinned a.n_id 0;
  Hashtbl.replace pinned b.n_id 2;
  let s = sched ~constraints:{ Chains.pinned; grouped = [] } g in
  let ml = Vliw_sched.Regpressure.max_live g s in
  Alcotest.(check bool) "source cluster holds the value" true (ml.(0) >= 1);
  Alcotest.(check bool) "destination holds the copy's value" true (ml.(2) >= 1)

let test_regpressure_long_liveness_overlaps () =
  (* a value consumed both immediately and after a long FP chain stays
     live past the II, so instances from successive iterations coexist *)
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let fmul k =
    G.Arith { aname = "fmul" ^ string_of_int k; fu_int = false; latency = 2 }
  in
  let m1 = G.add_node g (fmul 1) in
  let m2 = G.add_node g (fmul 2) in
  let m3 = G.add_node g (fmul 3) in
  let m4 = G.add_node g (fmul 4) in
  let fin = G.add_node g (arith "fin") in
  G.add_edge g G.RF ~src:a.n_id ~dst:m1.n_id;
  G.add_edge g G.RF ~src:m1.n_id ~dst:m2.n_id;
  G.add_edge g G.RF ~src:m2.n_id ~dst:m3.n_id;
  G.add_edge g G.RF ~src:m3.n_id ~dst:m4.n_id;
  G.add_edge g G.RF ~src:m4.n_id ~dst:fin.n_id;
  G.add_edge g G.RF ~src:a.n_id ~dst:fin.n_id;
  let pinned = Hashtbl.create 8 in
  List.iter (fun (n : G.node) -> Hashtbl.replace pinned n.n_id 1) (G.nodes g);
  let s = sched ~constraints:{ Chains.pinned; grouped = [] } g in
  (* a's value is live from t(a)+1 until fin, ~9 cycles; the II is bounded
     by the four FP ops on one FP unit (4), so at least two instances of
     the value coexist *)
  Alcotest.(check bool) "II bounded by the FP unit" true (s.S.ii <= 5);
  Alcotest.(check bool) "overlapping instances counted" true
    ((Vliw_sched.Regpressure.max_live g s).(1) > 1)

(* --- validator negative paths --- *)

let expect_invalid msg g s =
  match S.validate g s with
  | Ok () -> Alcotest.failf "%s: invalid schedule accepted" msg
  | Error _ -> ()

let test_validate_rejects_tampered_cycle () =
  let g = G.create () in
  let a = G.add_node g (arith ~lat:3 "a") in
  let b = G.add_node g (arith "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  let s = sched g in
  assert_valid g s;
  (* move the consumer onto its producer: latency violated *)
  Hashtbl.replace s.S.place b.n_id (S.cycle_of s a.n_id, S.cluster_of s a.n_id);
  expect_invalid "latency" g s

let test_validate_rejects_missing_copy () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (arith "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  let pinned = Hashtbl.create 2 in
  Hashtbl.replace pinned a.n_id 0;
  Hashtbl.replace pinned b.n_id 3;
  let s = sched ~constraints:{ Chains.pinned; grouped = [] } g in
  assert_valid g s;
  let s' = { s with S.copies = [] } in
  expect_invalid "missing copy" g s'

let test_validate_rejects_fu_oversubscription () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (arith "b") in
  let s = sched g in
  assert_valid g s;
  (* cram both int ops into the same cluster and slot *)
  Hashtbl.replace s.S.place a.n_id (0, 0);
  Hashtbl.replace s.S.place b.n_id (s.S.ii, 0);
  expect_invalid "FU oversubscription" g s

let test_validate_rejects_moved_replica () =
  let g = G.create () in
  let st = G.add_node g ~replica:2 (G.Store (mr "m")) in
  let s = sched g in
  assert_valid g s;
  Hashtbl.replace s.S.place st.n_id (S.cycle_of s st.n_id, 1);
  expect_invalid "replica pin" g s

(* --- swing ordering --- *)

let test_swing_schedules_and_validates () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (G.Arith { aname = "fmul"; fu_int = false; latency = 2 }) in
  let c = G.add_node g (arith "c") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  G.add_edge g G.RF ~src:b.n_id ~dst:c.n_id;
  G.add_edge g ~dist:1 G.RF ~src:c.n_id ~dst:a.n_id;
  let s =
    match Driver.run (Driver.request ~ordering:Vliw_sched.Ims.Swing M.table2) g with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  assert_valid g s

let test_swing_not_worse_ii_on_recurrence () =
  (* same recurrence scheduled both ways: swing must not lose on II *)
  let mk () =
    let g = G.create () in
    let a = G.add_node g (arith ~lat:2 "a") in
    let b = G.add_node g (arith ~lat:3 "b") in
    G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
    G.add_edge g ~dist:1 G.RF ~src:b.n_id ~dst:a.n_id;
    g
  in
  let ii ordering =
    (Driver.run_exn (Driver.request ~ordering M.table2) (mk ())).S.ii
  in
  Alcotest.(check bool) "swing II <= height II" true
    (ii Vliw_sched.Ims.Swing <= ii Vliw_sched.Ims.Height)

let prop_swing_random_dags =
  QCheck.Test.make ~name:"random DAGs schedule under Swing ordering" ~count:60
    (QCheck.make gen_spec) (fun spec ->
      let g = build_spec spec in
      QCheck.assume (G.validate g = Ok ());
      match
        Driver.run (Driver.request ~ordering:Vliw_sched.Ims.Swing M.table2) g
      with
      | Ok s -> S.validate g s = Ok ()
      | Error _ -> false)

let () =
  Alcotest.run "sched"
    [
      ( "mrt",
        [
          Alcotest.test_case "fu capacity" `Quick test_mrt_fu_capacity;
          Alcotest.test_case "bus occupancy" `Quick test_mrt_bus_occupancy;
          Alcotest.test_case "bus modulo conflict" `Quick test_mrt_bus_modulo_conflict;
        ] );
      ( "basic",
        [
          Alcotest.test_case "single op" `Quick test_schedule_single_op;
          Alcotest.test_case "chain latency" `Quick test_schedule_chain_latency;
          Alcotest.test_case "fu saturation" `Quick test_schedule_fu_saturation;
          Alcotest.test_case "recurrence" `Quick test_schedule_recurrence;
        ] );
      ( "clustering",
        [
          Alcotest.test_case "cross-cluster copy" `Quick
            test_schedule_pinned_cross_cluster_copy;
          Alcotest.test_case "same cluster no copy" `Quick
            test_schedule_same_cluster_no_copy;
          Alcotest.test_case "grouped chain" `Quick
            test_schedule_grouped_chain_single_cluster;
          Alcotest.test_case "mem dep order" `Quick test_schedule_mem_dep_order;
          Alcotest.test_case "sync same cycle" `Quick
            test_schedule_sync_edge_same_cycle_ok;
          Alcotest.test_case "prefclus" `Quick test_schedule_prefclus_places_mem_in_pref;
          Alcotest.test_case "mincoms postpass" `Quick
            test_schedule_mincoms_postpass_local_accesses;
        ] );
      ( "validator negatives",
        [
          Alcotest.test_case "tampered cycle" `Quick test_validate_rejects_tampered_cycle;
          Alcotest.test_case "missing copy" `Quick test_validate_rejects_missing_copy;
          Alcotest.test_case "fu oversubscription" `Quick
            test_validate_rejects_fu_oversubscription;
          Alcotest.test_case "moved replica" `Quick test_validate_rejects_moved_replica;
        ] );
      ( "swing ordering",
        [
          Alcotest.test_case "validates" `Quick test_swing_schedules_and_validates;
          Alcotest.test_case "recurrence II" `Quick test_swing_not_worse_ii_on_recurrence;
          QCheck_alcotest.to_alcotest prop_swing_random_dags;
        ] );
      ( "register pressure",
        [
          Alcotest.test_case "simple chain" `Quick test_regpressure_simple_chain;
          Alcotest.test_case "cross cluster" `Quick
            test_regpressure_cross_cluster_charges_destination;
          Alcotest.test_case "overlapping liveness" `Quick
            test_regpressure_long_liveness_overlaps;
        ] );
      ( "latency assignment",
        [
          Alcotest.test_case "stretches free slack" `Quick
            test_latency_assignment_stretches_free_slack;
          Alcotest.test_case "respects recurrence" `Quick
            test_latency_assignment_respects_recurrence;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "figure 5 schedules" `Quick test_schedule_fig5_ddgt_graph;
          Alcotest.test_case "MDC raises II" `Quick test_schedule_mdc_vs_free_ii;
          Alcotest.test_case "lowered kernel" `Quick test_schedule_lowered_kernel;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_dags_schedule M.table2 "random DAGs schedule (BAL)";
            prop_random_dags_schedule M.nobal_mem "random DAGs schedule (NOBAL+MEM)";
            prop_random_dags_schedule M.nobal_reg "random DAGs schedule (NOBAL+REG)";
            prop_ddgt_then_schedule;
          ] );
    ]

