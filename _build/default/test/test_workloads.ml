module G = Vliw_ddg.Graph
module M = Vliw_arch.Machine
module W = Vliw_workloads.Workloads
module Lower = Vliw_lower.Lower
module Chains = Vliw_core.Chains
module Driver = Vliw_sched.Driver
module S = Vliw_sched.Schedule
module Ir = Vliw_ir

let all_loops f =
  List.iter
    (fun (b : W.benchmark) -> List.iter (fun l -> f b l) b.W.b_loops)
    W.all

let test_suite_shape () =
  Alcotest.(check int) "14 benchmarks (Table 1)" 14 (List.length W.all);
  Alcotest.(check int) "13 in the figures" 13 (List.length W.figures);
  Alcotest.(check bool) "epicenc only in Table 1" true
    (not (List.exists (fun b -> b.W.b_name = "epicenc") W.figures));
  let names = List.map (fun b -> b.W.b_name) W.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_interleaves_match_paper () =
  let il name = (W.find name).W.b_interleave in
  List.iter
    (fun n -> Alcotest.(check int) (n ^ " 4B") 4 (il n))
    [ "epicdec"; "jpegdec"; "jpegenc"; "mpeg2dec"; "pgpdec"; "pgpenc"; "rasta" ];
  List.iter
    (fun n -> Alcotest.(check int) (n ^ " 2B") 2 (il n))
    [ "g721dec"; "g721enc"; "gsmdec"; "gsmenc"; "pegwitdec"; "pegwitenc" ]

let test_seeds_distinct () =
  List.iter
    (fun (b : W.benchmark) ->
      Alcotest.(check bool)
        (b.W.b_name ^ " has distinct profile/exec inputs")
        true
        (b.W.b_profile_seed <> b.W.b_exec_seed))
    W.all

let test_every_loop_parses_and_typechecks () =
  all_loops (fun b l ->
      ignore (W.parse_loop l ~seed:b.W.b_profile_seed);
      ignore (W.parse_loop l ~seed:b.W.b_exec_seed))

let test_every_loop_lowers_and_validates () =
  all_loops (fun b l ->
      let k = W.parse_loop l ~seed:b.W.b_exec_seed in
      let low = Lower.lower k in
      match G.validate low.Lower.graph with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s/%s: %s" b.W.b_name l.W.l_name e)

let test_every_loop_interprets_deterministically () =
  all_loops (fun b l ->
      let k = W.parse_loop l ~seed:b.W.b_exec_seed in
      let layout = Ir.Layout.make k in
      let r1 = Ir.Interp.run ~layout k and r2 = Ir.Interp.run ~layout k in
      if not (Bytes.equal r1.Ir.Interp.memory r2.Ir.Interp.memory) then
        Alcotest.failf "%s/%s: non-deterministic" b.W.b_name l.W.l_name)

let test_every_loop_schedules () =
  all_loops (fun b l ->
      let k = W.parse_loop l ~seed:b.W.b_exec_seed in
      let low = Lower.lower k in
      let machine = M.with_interleave M.table2 b.W.b_interleave in
      match Driver.run (Driver.request machine) low.Lower.graph with
      | Ok s -> (
        match S.validate low.Lower.graph s with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s/%s: invalid schedule: %s" b.W.b_name l.W.l_name e)
      | Error e -> Alcotest.failf "%s/%s: %s" b.W.b_name l.W.l_name e)

let test_chain_structure_matches_table3 () =
  let biggest_chain name lname =
    let b = W.find name in
    let l = List.find (fun (l : W.loop) -> l.W.l_name = lname) b.W.b_loops in
    let low = Lower.lower (W.parse_loop l ~seed:b.W.b_exec_seed) in
    List.length (Chains.biggest low.Lower.graph)
  in
  (* g721: no chains at all (Table 3's zeros) *)
  List.iter
    (fun (l : W.loop) ->
      let low = Lower.lower (W.parse_loop l ~seed:2003) in
      Alcotest.(check int) ("g721 " ^ l.W.l_name ^ " chain-free") 0
        (List.length (Chains.biggest low.Lower.graph)))
    (W.find "g721dec").W.b_loops;
  (* the chain-heavy loops *)
  Alcotest.(check bool) "epicdec wavelet chain >= 6" true
    (biggest_chain "epicdec" "wavelet" >= 6);
  Alcotest.(check bool) "epicdec pyramid chain >= 8" true
    (biggest_chain "epicdec" "pyramid" >= 8);
  Alcotest.(check bool) "pgp mpmul chain >= 6" true
    (biggest_chain "pgpdec" "mpmul" >= 6);
  Alcotest.(check bool) "rasta filter chain >= 6" true
    (biggest_chain "rasta" "filter" >= 6)

let test_dominant_data_sizes () =
  (* the declared dominant size must actually dominate the loop's accesses *)
  List.iter
    (fun name ->
      let b = W.find name in
      let total = ref 0 and dominant = ref 0 in
      List.iter
        (fun (l : W.loop) ->
          let k = W.parse_loop l ~seed:b.W.b_exec_seed in
          let low = Lower.lower k in
          List.iter
            (fun ((_ : G.node), (mr : G.mem_ref)) ->
              total := !total + l.W.l_weight;
              if mr.G.mr_bytes = b.W.b_data_size then
                dominant := !dominant + l.W.l_weight)
            (G.mem_refs low.Lower.graph))
        b.W.b_loops;
      Alcotest.(check bool)
        (Printf.sprintf "%s: %dB accesses dominate" name b.W.b_data_size)
        true
        (2 * !dominant >= !total))
    [ "epicdec"; "g721dec"; "gsmdec"; "pegwitdec"; "pgpdec"; "rasta" ]

let test_machines_validate_per_benchmark () =
  List.iter
    (fun (b : W.benchmark) ->
      let m = M.with_interleave M.table2 b.W.b_interleave in
      match M.validate m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" b.W.b_name e)
    W.all

let () =
  Alcotest.run "workloads"
    [
      ( "inventory",
        [
          Alcotest.test_case "suite shape" `Quick test_suite_shape;
          Alcotest.test_case "interleaves" `Quick test_interleaves_match_paper;
          Alcotest.test_case "seeds" `Quick test_seeds_distinct;
          Alcotest.test_case "machines validate" `Quick
            test_machines_validate_per_benchmark;
        ] );
      ( "compilation",
        [
          Alcotest.test_case "parse + typecheck" `Quick
            test_every_loop_parses_and_typechecks;
          Alcotest.test_case "lower + validate" `Quick
            test_every_loop_lowers_and_validates;
          Alcotest.test_case "interpret" `Quick
            test_every_loop_interprets_deterministically;
          Alcotest.test_case "schedule" `Slow test_every_loop_schedules;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "chain structure" `Quick
            test_chain_structure_matches_table3;
          Alcotest.test_case "data sizes" `Quick test_dominant_data_sizes;
        ] );
    ]
