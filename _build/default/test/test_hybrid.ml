module G = Vliw_ddg.Graph
module M = Vliw_arch.Machine
module S = Vliw_sched.Schedule
module Driver = Vliw_sched.Driver
module Hybrid = Vliw_sched.Hybrid
module Lower = Vliw_lower.Lower
module Ir = Vliw_ir
module R = Vliw_harness.Runner
module W = Vliw_workloads.Workloads

let prep src =
  let k = Ir.Parser.parse_kernel src in
  let low = Lower.lower k in
  let layout = Ir.Layout.make k in
  let prof = Vliw_profile.Profile.run ~machine:M.table2 ~layout k in
  (k, low, Vliw_profile.Profile.node_pref prof)

let choose src =
  let k, low, pref_for = prep src in
  match
    Hybrid.choose ~machine:M.table2 ~heuristic:S.Pref_clus ~pref_for
      ~trip:k.Ir.Ast.k_trip low.Lower.graph
  with
  | Ok h -> h
  | Error e -> Alcotest.fail e

let test_chain_free_loop_picks_mdc () =
  (* no chains: MDC == free; DDGT can only add replication overhead, so the
     estimate must prefer MDC *)
  let h =
    choose
      "kernel k { array a : i32[512] = zero array b : i32[512] = zero trip 128 body { b[4*i] = a[4*i] + 1 } }"
  in
  Alcotest.(check string) "choice" "MDC" (Hybrid.choice_name h.Hybrid.choice);
  Alcotest.(check bool) "estimates ordered" true
    (h.Hybrid.mdc_estimate <= h.Hybrid.ddgt_estimate)

let test_chain_heavy_loop_picks_ddgt () =
  (* a big chain over clusters: MDC serializes 6 memory ops on one Mem FU
     (II >= 6) while DDGT spreads them *)
  let h =
    choose
      "kernel k { array a : i32[532] = ramp(1,3) trip 128 body { let x = \
       a[4*i] + a[4*i + 1] + a[4*i + 2] + a[4*i + 3] a[(x & 511) + 4] = x } }"
  in
  Alcotest.(check string) "choice" "DDGT" (Hybrid.choice_name h.Hybrid.choice);
  Alcotest.(check bool) "estimates ordered" true
    (h.Hybrid.ddgt_estimate < h.Hybrid.mdc_estimate)

let test_estimate_monotone_in_trip () =
  let k, low, pref_for = prep
      "kernel k { array a : i32[512] = zero trip 64 body { a[4*i] = a[4*i] + 1 } }"
  in
  let g = low.Lower.graph in
  let s =
    Driver.run_exn (Driver.request ~pref:(pref_for g) M.table2) g
  in
  ignore k;
  let e32 = Hybrid.estimate ~machine:M.table2 ~pref:(pref_for g) ~trip:32 g s in
  let e64 = Hybrid.estimate ~machine:M.table2 ~pref:(pref_for g) ~trip:64 g s in
  Alcotest.(check bool) "longer trips cost more" true (e64 > e32)

let test_chosen_schedule_validates () =
  let h =
    choose
      "kernel k { array a : i32[532] = zero trip 128 body { a[4*i] = a[4*i] + a[4*i + 5] } }"
  in
  match S.validate h.Hybrid.graph h.Hybrid.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_runner_hybrid_never_worse_than_both_on_suite () =
  (* across the whole suite (weighted totals), the hybrid should be at most
     a whisker above the better pure technique on every benchmark, and
     strictly better than the worse one somewhere *)
  let machine = M.table2 in
  let strictly_better = ref false in
  List.iter
    (fun b ->
      let cycles tech =
        (R.run_bench ~machine tech S.Pref_clus b).R.br_cycles
      in
      let m = cycles R.Mdc and d = cycles R.Ddgt and h = cycles R.Hybrid in
      Alcotest.(check bool)
        (b.W.b_name ^ ": hybrid within 10% of the best pure technique")
        true
        (h <= 1.10 *. Float.min m d);
      if h < 0.95 *. Float.max m d then strictly_better := true)
    [ W.find "g721dec"; W.find "gsmdec"; W.find "pgpdec" ];
  Alcotest.(check bool) "hybrid beats the worse technique somewhere" true
    !strictly_better

(* --- latency policy ablation --- *)

let sched_with policy src =
  let k, low, pref_for = prep src in
  ignore k;
  let g = low.Lower.graph in
  match
    Driver.run (Driver.request ~pref:(pref_for g) ~lat_policy:policy M.table2) g
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let src_free_slack =
  "kernel k { array a : i32[512] = zero array b : i32[512] = zero trip 64 body { b[4*i] = a[4*i] * 3 } }"

let test_fixed_min_keeps_local_hit_assumption () =
  let s = sched_with Driver.Fixed_min src_free_slack in
  Vliw_ddg.Graph.mem_refs
    (Lower.lower (Ir.Parser.parse_kernel src_free_slack)).Lower.graph
  |> List.iter (fun ((n : G.node), _) ->
         Alcotest.(check int) "assumed = local hit" 1 (S.assumed_of s n.n_id))

let test_fixed_max_assumes_remote_miss () =
  let s = sched_with Driver.Fixed_max src_free_slack in
  Vliw_ddg.Graph.mem_refs
    (Lower.lower (Ir.Parser.parse_kernel src_free_slack)).Lower.graph
  |> List.iter (fun ((n : G.node), _) ->
         Alcotest.(check int) "assumed = remote miss" 15 (S.assumed_of s n.n_id))

let test_policies_order_schedule_length () =
  let len p = (sched_with p src_free_slack).S.length in
  Alcotest.(check bool) "min shortest" true (len Driver.Fixed_min <= len Driver.Cache_sensitive);
  Alcotest.(check bool) "max not shorter than sensitive" true
    (len Driver.Fixed_max >= len Driver.Fixed_min)

let () =
  Alcotest.run "hybrid"
    [
      ( "choice",
        [
          Alcotest.test_case "chain-free picks MDC" `Quick
            test_chain_free_loop_picks_mdc;
          Alcotest.test_case "chain-heavy picks DDGT" `Quick
            test_chain_heavy_loop_picks_ddgt;
          Alcotest.test_case "estimate monotone" `Quick test_estimate_monotone_in_trip;
          Alcotest.test_case "chosen schedule validates" `Quick
            test_chosen_schedule_validates;
          Alcotest.test_case "suite sanity" `Slow
            test_runner_hybrid_never_worse_than_both_on_suite;
        ] );
      ( "latency policy",
        [
          Alcotest.test_case "fixed min" `Quick test_fixed_min_keeps_local_hit_assumption;
          Alcotest.test_case "fixed max" `Quick test_fixed_max_assumes_remote_miss;
          Alcotest.test_case "length ordering" `Quick test_policies_order_schedule_length;
        ] );
    ]
