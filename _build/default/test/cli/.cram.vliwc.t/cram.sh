  $ vliwc() { ../../bin/vliwc.exe "$@"; }
  $ vliwc ../../examples/kernels/inplace.lk -H prefclus -t free
  $ vliwc ../../examples/kernels/inplace.lk -H prefclus -t mdc
  $ vliwc ../../examples/kernels/inplace.lk -H prefclus -t ddgt
  $ vliwc ../../examples/kernels/inplace.lk -H prefclus -t hybrid
  $ vliwc ../../examples/kernels/fir.lk --interleave 2 -H prefclus -t mdc
  $ vliwc ../../examples/kernels/histogram.lk -t mdc -H prefclus
  $ vliwc ../../examples/kernels/stream.lk -H prefclus --unroll 0
  $ vliwc ../../examples/kernels/inplace.lk -t ddgt --execution | tail -1
  $ echo 'kernel broken { body { let = 3 } }' > broken.lk
  $ vliwc broken.lk
  $ vliwc ../../examples/kernels/inplace.lk -H prefclus --compare
  $ cat > lintme.lk <<'LK'
  > kernel lintme {
  >   array a : i32[16] = zero
  >   array dead : i32[8] = zero
  >   scalar c : i64 = 3
  >   trip 32
  >   body {
  >     let unused = a[i] + 1
  >     a[2*i] = c
  >     a[2*i] = c + a[2*i]
  >   }
  > }
  > LK
  $ vliwc lintme.lk --lint 2>&1 | head -6
  $ vliwc ../../examples/kernels/fir.lk --interleave 2 --cse -t mdc -H prefclus | head -3
