module G = Vliw_ddg.Graph
module A = Vliw_ddg.Analysis
module Dot = Vliw_ddg.Dot

let mr ?affine ?(bytes = 4) ?(site = 0) arr =
  { G.mr_array = arr; mr_affine = affine; mr_bytes = bytes; mr_float = false;
    mr_site = site }

let arith ?(lat = 1) name = G.Arith { aname = name; fu_int = true; latency = lat }

let ok_or_fail = function Ok () -> () | Error e -> Alcotest.fail e

(* --- construction and validation --- *)

let test_add_nodes_edges () =
  let g = G.create () in
  let a = G.add_node g (G.Load (mr "x")) in
  let b = G.add_node g (arith "add") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  Alcotest.(check int) "two nodes" 2 (G.node_count g);
  Alcotest.(check int) "one edge" 1 (List.length (G.edges g));
  Alcotest.(check int) "succ of a" 1 (List.length (G.succs g a.n_id));
  Alcotest.(check int) "pred of b" 1 (List.length (G.preds g b.n_id));
  ok_or_fail (G.validate g)

let test_duplicate_edge_ignored () =
  let g = G.create () in
  let a = G.add_node g (G.Load (mr "x")) in
  let b = G.add_node g (arith "add") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  Alcotest.(check int) "deduplicated" 1 (List.length (G.edges g));
  (* same endpoints at another distance is a distinct edge *)
  G.add_edge g ~dist:1 G.RF ~src:a.n_id ~dst:b.n_id;
  Alcotest.(check int) "distinct distance kept" 2 (List.length (G.edges g))

let test_remove_edge () =
  let g = G.create () in
  let a = G.add_node g (G.Load (mr "x")) in
  let b = G.add_node g (arith "add") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  G.remove_edge g (List.hd (G.edges g));
  Alcotest.(check int) "removed" 0 (List.length (G.edges g))

let test_edge_endpoint_checks () =
  let g = G.create () in
  let a = G.add_node g (arith "add") in
  Alcotest.(check bool) "missing endpoint rejected" true
    (try G.add_edge g G.RF ~src:a.n_id ~dst:99; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative distance rejected" true
    (try G.add_edge g ~dist:(-1) G.RF ~src:a.n_id ~dst:a.n_id; false
     with Invalid_argument _ -> true)

let test_validate_kind_shapes () =
  (* MF must be store -> load *)
  let g = G.create () in
  let l = G.add_node g (G.Load (mr "x")) in
  let l2 = G.add_node g (G.Load (mr "x")) in
  G.add_edge g G.MF ~src:l.n_id ~dst:l2.n_id;
  (match G.validate g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "MF load->load accepted");
  let g2 = G.create () in
  let s = G.add_node g2 (G.Store (mr "x")) in
  let c = G.add_node g2 (arith "add") in
  G.add_edge g2 G.RF ~src:s.n_id ~dst:c.n_id;
  match G.validate g2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "RF out of a store accepted"

let test_validate_zero_cycle () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (arith "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  G.add_edge g G.RF ~src:b.n_id ~dst:a.n_id;
  (match G.validate g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "distance-0 cycle accepted");
  (* breaking the cycle with a loop-carried edge is fine *)
  G.remove_edge g { G.e_src = b.n_id; e_dst = a.n_id; e_kind = G.RF; e_dist = 0 };
  G.add_edge g ~dist:1 G.RF ~src:b.n_id ~dst:a.n_id;
  ok_or_fail (G.validate g)

let test_self_rf_distance () =
  let g = G.create () in
  let a = G.add_node g (arith "acc") in
  G.add_edge g ~dist:1 G.RF ~src:a.n_id ~dst:a.n_id;
  ok_or_fail (G.validate g);
  let g2 = G.create () in
  let b = G.add_node g2 (arith "acc") in
  let rejected =
    try
      G.add_edge g2 G.RF ~src:b.n_id ~dst:b.n_id;
      G.validate g2 <> Ok ()
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "self RF at distance 0 rejected" true rejected

let test_fu_kinds () =
  let g = G.create () in
  let l = G.add_node g (G.Load (mr "x")) in
  let f = G.add_node g (G.Arith { aname = "fadd"; fu_int = false; latency = 2 }) in
  let i = G.add_node g (arith "add") in
  let k = G.add_node g G.Fake in
  Alcotest.(check bool) "load on mem fu" true (G.fu_kind l = Vliw_arch.Machine.Mem_fu);
  Alcotest.(check bool) "fadd on fp fu" true (G.fu_kind f = Vliw_arch.Machine.Fp_fu);
  Alcotest.(check bool) "add on int fu" true (G.fu_kind i = Vliw_arch.Machine.Int_fu);
  Alcotest.(check bool) "fake on int fu" true (G.fu_kind k = Vliw_arch.Machine.Int_fu)

let test_op_latency () =
  let g = G.create () in
  let l = G.add_node g (G.Load (mr "x")) in
  let a = G.add_node g (arith ~lat:4 "div") in
  Alcotest.(check int) "mem op uses assumed" 7
    (G.op_latency l ~assumed:(fun _ -> 7));
  Alcotest.(check int) "arith uses opcode" 4 (G.op_latency a ~assumed:(fun _ -> 7))

(* --- analyses --- *)

let diamond () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (arith "b") in
  let c = G.add_node g (arith "c") in
  let d = G.add_node g (arith "d") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  G.add_edge g G.RF ~src:a.n_id ~dst:c.n_id;
  G.add_edge g G.RF ~src:b.n_id ~dst:d.n_id;
  G.add_edge g G.RF ~src:c.n_id ~dst:d.n_id;
  (g, a, b, c, d)

let test_topo_order () =
  let g, a, _, _, d = diamond () in
  let order = A.topo_order g in
  Alcotest.(check int) "all nodes" 4 (List.length order);
  Alcotest.(check int) "source first" a.n_id (List.hd order);
  Alcotest.(check int) "sink last" d.n_id (List.nth order 3)

let test_sccs_acyclic () =
  let g, _, _, _, _ = diamond () in
  let comps = A.sccs g in
  Alcotest.(check int) "4 singleton SCCs" 4 (List.length comps);
  List.iter (fun c -> Alcotest.(check int) "singleton" 1 (List.length c)) comps

let test_sccs_recurrence () =
  let g = G.create () in
  let a = G.add_node g (arith "a") in
  let b = G.add_node g (arith "b") in
  let c = G.add_node g (arith "c") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  G.add_edge g ~dist:1 G.RF ~src:b.n_id ~dst:a.n_id;
  G.add_edge g G.RF ~src:b.n_id ~dst:c.n_id;
  let comps = A.sccs g in
  Alcotest.(check int) "two SCCs" 2 (List.length comps);
  Alcotest.(check bool) "a,b together" true
    (List.exists (fun comp -> comp = List.sort compare [ a.n_id; b.n_id ]) comps)

let test_reachable_same_iter () =
  let g, a, _, _, d = diamond () in
  Alcotest.(check bool) "a reaches d" true
    (A.reachable_same_iter g ~src:a.n_id ~dst:d.n_id);
  Alcotest.(check bool) "d does not reach a" false
    (A.reachable_same_iter g ~src:d.n_id ~dst:a.n_id);
  (* distance-1 edges do not count as same-iteration paths *)
  let e = G.add_node g (arith "e") in
  G.add_edge g ~dist:1 G.RF ~src:d.n_id ~dst:e.n_id;
  Alcotest.(check bool) "loop-carried edge ignored" false
    (A.reachable_same_iter g ~src:a.n_id ~dst:e.n_id)

let test_undirected_components () =
  let g = G.create () in
  let s1 = G.add_node g (G.Store (mr "x")) in
  let l1 = G.add_node g (G.Load (mr "x")) in
  let _s2 = G.add_node g (G.Store (mr "y")) in
  let a = G.add_node g (arith "a") in
  G.add_edge g ~dist:1 G.MF ~src:s1.n_id ~dst:l1.n_id;
  G.add_edge g G.RF ~src:l1.n_id ~dst:a.n_id;
  let comps = A.undirected_components g ~keep:(fun e -> G.is_mem_kind e.G.e_kind) in
  (* {s1,l1} joined by MF; s2 and a are singletons *)
  Alcotest.(check int) "three components" 3 (List.length comps);
  Alcotest.(check bool) "s1 l1 joined" true
    (List.mem (List.sort compare [ s1.n_id; l1.n_id ]) comps)

let test_rec_mii_acyclic () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check int) "acyclic MII is 1" 1
    (A.rec_mii g ~edge_lat:(fun _ -> 1))

let test_rec_mii_recurrence () =
  (* cycle a -> b -> a with latencies 2 + 3 and total distance 1: RecMII 5 *)
  let g = G.create () in
  let a = G.add_node g (arith ~lat:2 "a") in
  let b = G.add_node g (arith ~lat:3 "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  G.add_edge g ~dist:1 G.RF ~src:b.n_id ~dst:a.n_id;
  let edge_lat (e : G.edge) = if e.e_src = a.n_id then 2 else 3 in
  Alcotest.(check int) "RecMII = 5" 5 (A.rec_mii g ~edge_lat)

let test_rec_mii_distance_two () =
  (* same cycle but distance 2: ceil(5/2) = 3 *)
  let g = G.create () in
  let a = G.add_node g (arith ~lat:2 "a") in
  let b = G.add_node g (arith ~lat:3 "b") in
  G.add_edge g G.RF ~src:a.n_id ~dst:b.n_id;
  G.add_edge g ~dist:2 G.RF ~src:b.n_id ~dst:a.n_id;
  let edge_lat (e : G.edge) = if e.e_src = a.n_id then 2 else 3 in
  Alcotest.(check int) "RecMII = 3" 3 (A.rec_mii g ~edge_lat)

let test_longest_paths () =
  let g, a, b, c, d = diamond () in
  let h = A.longest_path_lengths g ~ii:1 ~edge_lat:(fun _ -> 1) in
  Alcotest.(check int) "sink height" 0 (h d.n_id);
  Alcotest.(check int) "mid height" 1 (h b.n_id);
  Alcotest.(check int) "mid height c" 1 (h c.n_id);
  Alcotest.(check int) "source height" 2 (h a.n_id)

let test_dot_output () =
  let g = G.create () in
  let s = G.add_node g (G.Store (mr "x")) in
  let l = G.add_node g (G.Load (mr "x")) in
  G.add_edge g ~dist:1 G.MF ~src:s.n_id ~dst:l.n_id;
  let dot = Dot.to_string g in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "edge label" true (contains dot "MF d=1");
  Alcotest.(check bool) "store box" true (contains dot "shape=box")

(* --- QCheck: random DAG invariants --- *)

let gen_dag =
  QCheck.Gen.(
    let* n = int_range 2 15 in
    let* edges =
      list_size (int_range 0 (n * 2))
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (n, edges))

let build_dag (n, edges) =
  let g = G.create () in
  let nodes = Array.init n (fun k -> (G.add_node g (arith (Printf.sprintf "n%d" k))).n_id) in
  List.iter
    (fun (a, b) ->
      (* orient edges forward to keep the distance-0 subgraph acyclic *)
      if a < b then G.add_edge g G.RF ~src:nodes.(a) ~dst:nodes.(b)
      else if b < a then G.add_edge g G.RF ~src:nodes.(b) ~dst:nodes.(a))
    edges;
  g

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo order respects distance-0 edges" ~count:300
    (QCheck.make gen_dag)
    (fun spec ->
      let g = build_dag spec in
      let order = A.topo_order g in
      let pos = Hashtbl.create 16 in
      List.iteri (fun i id -> Hashtbl.replace pos id i) order;
      List.length order = G.node_count g
      && List.for_all
           (fun (e : G.edge) ->
             e.e_dist > 0 || Hashtbl.find pos e.e_src < Hashtbl.find pos e.e_dst)
           (G.edges g))

let prop_sccs_partition =
  QCheck.Test.make ~name:"SCCs partition the nodes" ~count:300
    (QCheck.make gen_dag)
    (fun spec ->
      let g = build_dag spec in
      let comps = A.sccs g in
      let all = List.concat comps |> List.sort compare in
      all = List.map (fun (n : G.node) -> n.n_id) (G.nodes g))

let prop_validate_random_dags =
  QCheck.Test.make ~name:"forward-oriented DAGs validate" ~count:300
    (QCheck.make gen_dag)
    (fun spec -> G.validate (build_dag spec) = Ok ())

let () =
  Alcotest.run "ddg"
    [
      ( "graph",
        [
          Alcotest.test_case "add nodes/edges" `Quick test_add_nodes_edges;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edge_ignored;
          Alcotest.test_case "remove edge" `Quick test_remove_edge;
          Alcotest.test_case "endpoint checks" `Quick test_edge_endpoint_checks;
          Alcotest.test_case "kind shapes" `Quick test_validate_kind_shapes;
          Alcotest.test_case "zero cycle" `Quick test_validate_zero_cycle;
          Alcotest.test_case "self RF" `Quick test_self_rf_distance;
          Alcotest.test_case "fu kinds" `Quick test_fu_kinds;
          Alcotest.test_case "op latency" `Quick test_op_latency;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "topo order" `Quick test_topo_order;
          Alcotest.test_case "sccs acyclic" `Quick test_sccs_acyclic;
          Alcotest.test_case "sccs recurrence" `Quick test_sccs_recurrence;
          Alcotest.test_case "reachability" `Quick test_reachable_same_iter;
          Alcotest.test_case "components" `Quick test_undirected_components;
          Alcotest.test_case "rec_mii acyclic" `Quick test_rec_mii_acyclic;
          Alcotest.test_case "rec_mii cycle" `Quick test_rec_mii_recurrence;
          Alcotest.test_case "rec_mii distance 2" `Quick test_rec_mii_distance_two;
          Alcotest.test_case "longest paths" `Quick test_longest_paths;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_topo_respects_edges; prop_sccs_partition; prop_validate_random_dags ] );
    ]
