module G = Vliw_ddg.Graph
module Lower = Vliw_lower.Lower
module Ir = Vliw_ir

let lower_src src = Lower.lower (Ir.Parser.parse_kernel src)

let parse_expr = Ir.Parser.parse_expr

let kernel_with_temps body =
  Ir.Parser.parse_kernel
    (Printf.sprintf
       "kernel k { array a : i32[256] = zero scalar s : i64 = 1 trip 32 body { %s } }"
       body)

(* --- affine analysis --- *)

let check_affine k e expected =
  Alcotest.(check (option (pair int int))) e expected
    (Lower.affine_of_expr k (parse_expr e))

let test_affine_basic () =
  let k = kernel_with_temps "a[0] = 1" in
  check_affine k "i" (Some (1, 0));
  check_affine k "3" (Some (0, 3));
  check_affine k "2*i + 5" (Some (2, 5));
  check_affine k "i*2 + 5" (Some (2, 5));
  check_affine k "5 - i" (Some (-1, 5));
  check_affine k "-(2*i)" (Some (-2, 0));
  check_affine k "(i + 1) * 4" (Some (4, 4));
  check_affine k "i << 3" (Some (8, 0))

let test_affine_rejects () =
  let k = kernel_with_temps "a[0] = 1" in
  check_affine k "i * i" None;
  check_affine k "a[i]" None;
  check_affine k "s + 1" None;
  check_affine k "i / 2" None;
  check_affine k "i % 4" None

let test_affine_through_temps () =
  let k = kernel_with_temps "let t = 2*i + 1 let u = t * 3 a[u] = 0" in
  Alcotest.(check (option (pair int int))) "u = 6i + 3" (Some (6, 3))
    (Lower.affine_of_expr k (Ir.Ast.Var "u"))

(* --- lowering structure --- *)

let test_affine_subscript_has_no_index_operand () =
  let low = lower_src
      "kernel k { array a : i32[64] = zero trip 64 body { a[i] = 7 } }"
  in
  let store = Lower.node_of_site low 0 in
  (match store.G.n_op with
  | G.Store mr ->
    Alcotest.(check (option (pair int int))) "byte-scaled affine" (Some (4, 0))
      mr.G.mr_affine
  | _ -> Alcotest.fail "expected a store");
  Alcotest.(check int) "no indirect index" 0 (Hashtbl.length low.Lower.mem_index)

let test_wrapping_subscript_becomes_indirect () =
  (* trip 64 over a[2*i] with len 64 wraps -> must lower as indirect *)
  let low = lower_src
      "kernel k { array a : i32[64] = zero trip 64 body { a[2*i] = 7 } }"
  in
  let store = Lower.node_of_site low 0 in
  (match store.G.n_op with
  | G.Store mr -> Alcotest.(check bool) "not affine" true (mr.G.mr_affine = None)
  | _ -> Alcotest.fail "expected a store");
  Alcotest.(check int) "indirect index operand" 1 (Hashtbl.length low.Lower.mem_index)

let test_constant_folding () =
  let low = lower_src
      "kernel k { array a : i32[8] = zero trip 4 body { a[0] = (2 + 3) * 4 } }"
  in
  (* the value folds to an immediate: just the store node *)
  Alcotest.(check int) "single node" 1 (G.node_count low.Lower.graph);
  match Hashtbl.find low.Lower.operands low.Lower.site_node.(0) with
  | [ Lower.Imm 20L ] -> ()
  | _ -> Alcotest.fail "expected an immediate 20 operand"

let test_scalar_accumulator_self_edge () =
  let low = lower_src
      "kernel k { array a : i32[64] = zero scalar acc : i64 = 0 trip 64 body { acc = acc + a[i] } }"
  in
  let mov = List.assoc "acc" low.Lower.scalar_update in
  (* the recurrence is mov -> add (distance 1) -> mov (distance 0) *)
  let carried =
    List.filter
      (fun (e : G.edge) -> e.e_src = mov && e.e_kind = G.RF && e.e_dist = 1)
      (G.edges low.Lower.graph)
  in
  Alcotest.(check int) "distance-1 RF edge out of the update" 1
    (List.length carried);
  let add = (List.hd carried).G.e_dst in
  Alcotest.(check bool) "closes a cycle back into the update" true
    (List.exists
       (fun (e : G.edge) -> e.e_src = add && e.e_dst = mov && e.e_dist = 0)
       (G.edges low.Lower.graph))

let test_scalar_reader_before_assign () =
  let low = lower_src
      "kernel k { array a : i64[64] = zero scalar s : i64 = 9 trip 64 body { a[i] = s s = s + 1 } }"
  in
  let mov = List.assoc "s" low.Lower.scalar_update in
  let store = Lower.node_of_site low 0 in
  (* the store's value operand must read the mov at distance 1 with the
     declared initial value *)
  match Hashtbl.find low.Lower.operands store.G.n_id with
  | [ Lower.Reg { producer; dist; init } ] ->
    Alcotest.(check int) "producer is mov" mov producer;
    Alcotest.(check int) "distance 1" 1 dist;
    Alcotest.(check int64) "initial value" 9L init
  | _ -> Alcotest.fail "unexpected store operands"

let test_constant_scalar_folds () =
  let low = lower_src
      "kernel k { array a : i64[8] = zero scalar c : i64 = 42 trip 4 body { a[0] = c } }"
  in
  match Hashtbl.find low.Lower.operands low.Lower.site_node.(0) with
  | [ Lower.Imm 42L ] -> ()
  | _ -> Alcotest.fail "never-assigned scalar should fold to its initial value"

let test_site_bijection () =
  let k =
    Ir.Parser.parse_kernel
      "kernel k { array a : i32[128] = modpat(64) array b : i32[128] = zero trip 32 body { b[a[i]] = a[i + 1] + a[2*i] } }"
  in
  let low = Lower.lower k in
  let sites = Ir.Sites.of_kernel k in
  Alcotest.(check int) "site count matches" (List.length sites)
    (Array.length low.Lower.site_node);
  List.iteri
    (fun idx (s : Ir.Sites.site) ->
      let n = Lower.node_of_site low idx in
      match n.G.n_op with
      | G.Load mr | G.Store mr ->
        Alcotest.(check string) "same array" s.Ir.Sites.site_arr mr.G.mr_array;
        Alcotest.(check bool) "same kind" s.site_is_store (G.is_store n);
        Alcotest.(check int) "site id stored" idx mr.G.mr_site
      | _ -> Alcotest.fail "site mapped to non-memory node")
    sites

let mem_kinds low =
  List.filter_map
    (fun (e : G.edge) ->
      if G.is_mem_kind e.G.e_kind then Some (e.G.e_kind, e.G.e_dist) else None)
    (G.edges low.Lower.graph)
  |> List.sort_uniq compare

let test_mem_dep_kinds () =
  (* forward in-place: the store trails both loads *)
  let low = lower_src
      "kernel k { array a : i32[65] = zero trip 64 body { a[i] = a[i] + a[i+1] } }"
  in
  let kinds = mem_kinds low in
  Alcotest.(check bool) "anti to the same element (d=0)" true
    (List.mem (G.MA, 0) kinds);
  Alcotest.(check bool) "anti to the look-ahead load (d=1)" true
    (List.mem (G.MA, 1) kinds);
  (* backward in-place: the store leads; next iteration's load reads it *)
  let low2 = lower_src
      "kernel k { array a : i32[66] = zero trip 64 body { a[i + 1] = a[i] + 2 } }"
  in
  Alcotest.(check bool) "flow to the next iteration (MF d=1)" true
    (List.mem (G.MF, 1) (mem_kinds low2))

let test_ambiguous_tracking () =
  let low = lower_src
      "kernel k { array a : i32[64] = zero array b : i32[64] = zero mayoverlap a trip 64 body { b[i] = a[i] } }"
  in
  Alcotest.(check bool) "mayoverlap dep is ambiguous" true
    (Hashtbl.length low.Lower.ambiguous > 0);
  let exact = lower_src
      "kernel k { array a : i32[65] = zero trip 64 body { a[i] = a[i+1] } }"
  in
  Alcotest.(check int) "exact deps are not ambiguous" 0
    (Hashtbl.length exact.Lower.ambiguous)

let test_lowered_graph_validates () =
  let low = lower_src
      "kernel k { array a : i32[128] = modpat(64) array b : f64[66] = zero scalar s : f64 = 0 trip 32 body { let x = a[a[i]] b[i] = b[i] + b[i + 2] s = s + b[2*i % 64] } }"
  in
  match G.validate low.Lower.graph with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_float_ops_on_fp_fu () =
  let low = lower_src
      "kernel k { array f : f32[64] = zero trip 32 body { f[i] = f[i] + f[i + 1] } }"
  in
  let fp_nodes =
    List.filter
      (fun (n : G.node) -> G.fu_kind n = Vliw_arch.Machine.Fp_fu)
      (G.nodes low.Lower.graph)
  in
  Alcotest.(check int) "one FP add" 1 (List.length fp_nodes)

let test_seq_follows_program_order () =
  let low = lower_src
      "kernel k { array a : i32[64] = zero array b : i32[64] = zero trip 32 body { b[i] = a[i] a[i] = 3 } }"
  in
  let seqs =
    Array.to_list low.Lower.site_node
    |> List.map (fun id -> (G.node low.Lower.graph id).G.n_seq)
  in
  Alcotest.(check bool) "memory sites in increasing seq" true
    (List.sort compare seqs = seqs)

(* --- QCheck --- *)

let gen_simple_kernel =
  QCheck.Gen.(
    let* stride = int_range 1 4 in
    let* off = int_range 0 4 in
    let* n_stmts = int_range 1 3 in
    let* use_scalar = bool in
    let body =
      List.init n_stmts (fun j ->
          Printf.sprintf "a[%d*i + %d] = a[%d*i + %d] + %d" stride (off + j)
            stride ((off + j + 1) mod 6) (j + 1))
      |> String.concat " "
    in
    let body = if use_scalar then body ^ " s = s + a[i]" else body in
    return
      (Printf.sprintf
         "kernel k { array a : i32[640] = ramp(0,1) scalar s : i64 = 0 trip 64 body { %s } }"
         body))

let prop_lowered_validates =
  QCheck.Test.make ~name:"random kernels lower to valid DDGs" ~count:100
    (QCheck.make gen_simple_kernel ~print:Fun.id)
    (fun src ->
      let low = lower_src src in
      G.validate low.Lower.graph = Ok ())

let prop_site_count_matches =
  QCheck.Test.make ~name:"site array is total and memory-typed" ~count:100
    (QCheck.make gen_simple_kernel ~print:Fun.id)
    (fun src ->
      let k = Ir.Parser.parse_kernel src in
      let low = Lower.lower k in
      Array.length low.Lower.site_node = Ir.Sites.count k
      && Array.for_all (fun id -> G.mem_node low.Lower.graph id) low.Lower.site_node)

let prop_alias_soundness_vs_trace =
  (* if two sites' dynamic accesses conflict at distance d, the lowered
     graph must contain a memory edge between them at distance <= d *)
  QCheck.Test.make ~name:"memory edges cover all dynamic conflicts" ~count:60
    (QCheck.make gen_simple_kernel ~print:Fun.id)
    (fun src ->
      let k = Ir.Parser.parse_kernel src in
      let low = Lower.lower k in
      let layout = Ir.Layout.make k in
      let r = Ir.Interp.run ~layout k in
      let nsites = Ir.Sites.count k in
      let edge_dist s1 s2 =
        (* min distance of a memory edge between the two sites' nodes *)
        List.fold_left
          (fun acc (e : G.edge) ->
            if
              G.is_mem_kind e.e_kind
              && e.e_src = low.Lower.site_node.(s1)
              && e.e_dst = low.Lower.site_node.(s2)
            then match acc with None -> Some e.e_dist | Some d -> Some (min d e.e_dist)
            else acc)
          None
          (G.edges low.Lower.graph)
      in
      let ok = ref true in
      let events = r.Ir.Interp.events in
      Array.iteri
        (fun idx1 (e1 : Ir.Interp.event) ->
          if !ok then
            (* compare with conflicting later events up to 3 iterations away *)
            let max_idx = min (Array.length events - 1) (idx1 + (3 * nsites)) in
            for idx2 = idx1 + 1 to max_idx do
              let e2 = events.(idx2) in
              let overlap =
                e1.ev_addr < e2.ev_addr + e2.ev_size
                && e2.ev_addr < e1.ev_addr + e1.ev_size
              in
              if overlap && (e1.ev_is_store || e2.ev_is_store) then (
                let d = e2.ev_iter - e1.ev_iter in
                match edge_dist e1.ev_site e2.ev_site with
                | Some dep_d when dep_d <= d -> ()
                | _ -> ok := false)
            done)
        events;
      !ok)

let () =
  Alcotest.run "lower"
    [
      ( "affine",
        [
          Alcotest.test_case "basic" `Quick test_affine_basic;
          Alcotest.test_case "rejects" `Quick test_affine_rejects;
          Alcotest.test_case "through temps" `Quick test_affine_through_temps;
        ] );
      ( "structure",
        [
          Alcotest.test_case "affine subscripts" `Quick
            test_affine_subscript_has_no_index_operand;
          Alcotest.test_case "wrap becomes indirect" `Quick
            test_wrapping_subscript_becomes_indirect;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "accumulator self edge" `Quick
            test_scalar_accumulator_self_edge;
          Alcotest.test_case "reader before assign" `Quick
            test_scalar_reader_before_assign;
          Alcotest.test_case "constant scalar" `Quick test_constant_scalar_folds;
          Alcotest.test_case "site bijection" `Quick test_site_bijection;
          Alcotest.test_case "mem dep kinds" `Quick test_mem_dep_kinds;
          Alcotest.test_case "ambiguous tracking" `Quick test_ambiguous_tracking;
          Alcotest.test_case "graph validates" `Quick test_lowered_graph_validates;
          Alcotest.test_case "fp ops" `Quick test_float_ops_on_fp_fu;
          Alcotest.test_case "seq order" `Quick test_seq_follows_program_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lowered_validates; prop_site_count_matches;
            prop_alias_soundness_vs_trace ] );
    ]
