test/test_harness.ml: Alcotest Array List String Vliw_arch Vliw_core Vliw_ddg Vliw_harness Vliw_ir Vliw_lower Vliw_profile Vliw_sched Vliw_sim Vliw_workloads
