test/test_cse_lint.ml: Alcotest Bytes Fun Gen List Printf QCheck QCheck_alcotest Result Vliw_ddg Vliw_ir Vliw_lower Vliw_workloads
