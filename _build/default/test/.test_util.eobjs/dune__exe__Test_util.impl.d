test/test_util.ml: Alcotest Array Bars Fun Gen List Prng QCheck QCheck_alcotest Stats String Table Vliw_util
