test/test_lower.ml: Alcotest Array Fun Hashtbl List Printf QCheck QCheck_alcotest String Vliw_arch Vliw_ddg Vliw_ir Vliw_lower
