test/test_workloads.ml: Alcotest Bytes List Printf Vliw_arch Vliw_core Vliw_ddg Vliw_ir Vliw_lower Vliw_sched Vliw_workloads
