test/test_ir.ml: Alcotest Array Ast Bytes Fun Int64 Interp Layout Lexer List Parser Pp Printf QCheck QCheck_alcotest Sem Sites String Typecheck Vliw_ir
