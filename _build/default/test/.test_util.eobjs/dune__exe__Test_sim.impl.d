test/test_sim.ml: Alcotest Bytes Fun Hashtbl List Printf QCheck QCheck_alcotest Vliw_arch Vliw_core Vliw_ddg Vliw_ir Vliw_lower Vliw_profile Vliw_sched Vliw_sim Vliw_util
