test/test_arch.ml: Alcotest List QCheck QCheck_alcotest Vliw_arch
