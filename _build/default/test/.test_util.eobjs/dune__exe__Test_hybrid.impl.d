test/test_hybrid.ml: Alcotest Float List Vliw_arch Vliw_ddg Vliw_harness Vliw_ir Vliw_lower Vliw_profile Vliw_sched Vliw_workloads
