test/test_alias.mli:
