test/test_cse_lint.mli:
