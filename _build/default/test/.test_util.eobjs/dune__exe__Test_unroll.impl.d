test/test_unroll.ml: Alcotest Bytes Fun List Printf QCheck QCheck_alcotest Result Vliw_arch Vliw_ir Vliw_lower Vliw_profile Vliw_sched
