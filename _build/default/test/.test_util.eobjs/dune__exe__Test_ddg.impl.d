test/test_ddg.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest String Vliw_arch Vliw_ddg
