test/test_alias.ml: Alcotest Disambiguate List Printf QCheck QCheck_alcotest Vliw_alias
