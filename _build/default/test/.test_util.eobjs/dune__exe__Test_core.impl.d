test/test_core.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Vliw_core Vliw_ddg Vliw_ir Vliw_lower
