test/test_sched.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Vliw_arch Vliw_core Vliw_ddg Vliw_ir Vliw_lower Vliw_sched
