module Ir = Vliw_ir
module Cse = Vliw_ir.Cse
module Lint = Vliw_lower.Lint
module Lower = Vliw_lower.Lower
module G = Vliw_ddg.Graph

let parse = Ir.Parser.parse_kernel

let run_mem k =
  let layout = Ir.Layout.make k in
  Ir.Interp.run ~layout k

(* --- CSE --- *)

let test_cse_removes_duplicate_load () =
  let k =
    parse
      "kernel k { array a : i32[64] = ramp(1,1) array b : i32[64] = zero trip 32 body { b[i] = a[i] + a[i] } }"
  in
  let k', removed = Cse.eliminate k in
  Alcotest.(check int) "one load removed" 1 removed;
  Alcotest.(check bool) "typechecks" true (Result.is_ok (Ir.Typecheck.check k'));
  Alcotest.(check int) "one memory load site left" 2 (Ir.Sites.count k');
  let r = run_mem k and r' = run_mem k' in
  Alcotest.(check bool) "same memory" true
    (Bytes.equal r.Ir.Interp.memory r'.Ir.Interp.memory)

let test_cse_kill_on_aliasing_store () =
  (* the store to a[i] between the two loads kills availability *)
  let k =
    parse
      "kernel k { array a : i32[64] = ramp(1,1) array b : i32[64] = zero trip 32 body { let x = a[i] a[i] = x + 1 b[i] = a[i] } }"
  in
  let k', removed = Cse.eliminate k in
  Alcotest.(check int) "nothing removed" 0 removed;
  let r = run_mem k and r' = run_mem k' in
  Alcotest.(check bool) "semantics preserved" true
    (Bytes.equal r.Ir.Interp.memory r'.Ir.Interp.memory)

let test_cse_survives_unrelated_store () =
  let k =
    parse
      "kernel k { array a : i32[64] = ramp(1,1) array b : i32[64] = zero array c : i32[64] = zero trip 32 body { let x = a[i] b[i] = x c[i] = a[i] } }"
  in
  let _, removed = Cse.eliminate k in
  Alcotest.(check int) "store to b does not kill a" 1 removed

let test_cse_mayoverlap_kills () =
  let k =
    parse
      "kernel k { array a : i32[64] = ramp(1,1) array b : i32[64] = zero mayoverlap a trip 32 body { let x = a[i] b[i] = x let y = a[i] b[i + 1] = y } }"
  in
  (* wait: b[i+1] out of bounds at i=63? len 64, i<=31, i+1<=32 ok *)
  let _, removed = Cse.eliminate k in
  Alcotest.(check int) "store to mayoverlap partner kills" 0 removed

let test_cse_distinct_subscripts_kept () =
  let k =
    parse
      "kernel k { array a : i32[65] = ramp(1,1) array b : i32[64] = zero trip 32 body { b[i] = a[i] + a[i + 1] } }"
  in
  let _, removed = Cse.eliminate k in
  Alcotest.(check int) "different subscripts are different loads" 0 removed

let test_cse_reduces_ddg_size () =
  let k =
    parse
      "kernel k { array a : i32[64] = ramp(1,1) array b : i32[64] = zero trip 32 body { b[i] = a[i] * a[i] + a[i] } }"
  in
  let k', removed = Cse.eliminate k in
  Alcotest.(check int) "two loads removed" 2 removed;
  let n = G.node_count (Lower.lower k).Lower.graph in
  let n' = G.node_count (Lower.lower k').Lower.graph in
  Alcotest.(check bool) "DDG shrinks" true (n' < n)

let prop_cse_semantics =
  QCheck.Test.make ~name:"CSE preserves interpreter results" ~count:80
    QCheck.(
      make
        Gen.(
          let* seed = int_range 0 99 in
          let* off = int_range 0 3 in
          return
            (Printf.sprintf
               "kernel q { array a : i32[256] = random(%d) array b : i32[256] \
                = zero mayoverlap a scalar s : i64 = 0 trip 32 body { let x = \
                a[2*i + %d] s = s + a[2*i + %d] + x b[2*i] = x + a[2*i] a[2*i] \
                = x } }"
               seed off off))
        ~print:Fun.id)
    (fun src ->
      let k = parse src in
      QCheck.assume (Result.is_ok (Ir.Typecheck.check k));
      let k', _ = Cse.eliminate k in
      Result.is_ok (Ir.Typecheck.check k')
      &&
      let r = run_mem k and r' = run_mem k' in
      Bytes.equal r.Ir.Interp.memory r'.Ir.Interp.memory
      && r.Ir.Interp.final_scalars = r'.Ir.Interp.final_scalars)

(* --- Lint --- *)

let codes k = List.map (fun d -> d.Lint.d_code) (Lint.check (parse k))

let test_lint_unused_temp () =
  Alcotest.(check bool) "flags unused temp" true
    (List.mem "unused-temp"
       (codes
          "kernel k { array a : i32[64] = zero trip 32 body { let t = a[i] a[i] = 1 } }"))

let test_lint_dead_store () =
  Alcotest.(check bool) "flags dead store" true
    (List.mem "dead-store"
       (codes
          "kernel k { array a : i32[64] = zero trip 32 body { a[i] = 1 a[i] = 2 } }"));
  Alcotest.(check bool) "intervening load saves it" false
    (List.mem "dead-store"
       (codes
          "kernel k { array a : i32[64] = zero array b : i32[64] = zero trip 32 body { a[i] = 1 b[i] = a[i] a[i] = 2 } }"))

let test_lint_wrapping_subscript () =
  Alcotest.(check bool) "flags wrap" true
    (List.mem "wrapping-subscript"
       (codes
          "kernel k { array a : i32[16] = zero trip 32 body { a[2*i] = 1 } }"));
  Alcotest.(check bool) "in-bounds clean" false
    (List.mem "wrapping-subscript"
       (codes
          "kernel k { array a : i32[64] = zero trip 32 body { a[2*i] = 1 } }"))

let test_lint_array_usage () =
  let cs =
    codes
      "kernel k { array dead : i32[8] = zero array ro : i32[64] = zero scalar s : i64 = 0 trip 32 body { s = s + ro[i] } }"
  in
  Alcotest.(check bool) "unused array" true (List.mem "unused-array" cs);
  Alcotest.(check bool) "never-written zero array" true
    (List.mem "never-written-array" cs)

let test_lint_scalars () =
  let cs =
    codes
      "kernel k { array a : i32[64] = zero scalar c : i64 = 9 scalar w : i64 = 0 trip 32 body { a[i] = c w = w } }"
  in
  Alcotest.(check bool) "constant scalar" true (List.mem "constant-scalar" cs);
  (* w reads itself, so it is not unread; use a separate case *)
  let cs2 =
    codes
      "kernel k { array a : i32[64] = zero scalar w : i64 = 0 trip 32 body { a[i] = 1 w = 5 } }"
  in
  Alcotest.(check bool) "unread scalar" true (List.mem "unread-scalar" cs2)

let test_lint_clean_kernel () =
  Alcotest.(check (list string)) "no diagnostics" []
    (codes
       "kernel k { array a : i32[64] = ramp(1,1) array b : i32[64] = zero \
        scalar s : i64 = 0 trip 32 body { let t = a[2*i] b[2*i] = t s = s + t } }")

let test_lint_workloads_clean_of_warnings () =
  (* the shipped workloads should carry no warnings (info is fine) *)
  List.iter
    (fun (b : Vliw_workloads.Workloads.benchmark) ->
      List.iter
        (fun (l : Vliw_workloads.Workloads.loop) ->
          let k = Vliw_workloads.Workloads.parse_loop l ~seed:b.b_exec_seed in
          List.iter
            (fun d ->
              if d.Lint.d_severity = Lint.Warning then
                Alcotest.failf "%s/%s: %s [%s]" b.b_name l.l_name d.d_message
                  d.d_code)
            (Lint.check k))
        b.b_loops)
    Vliw_workloads.Workloads.all

let () =
  Alcotest.run "cse_lint"
    [
      ( "cse",
        [
          Alcotest.test_case "duplicate load" `Quick test_cse_removes_duplicate_load;
          Alcotest.test_case "aliasing store kills" `Quick test_cse_kill_on_aliasing_store;
          Alcotest.test_case "unrelated store" `Quick test_cse_survives_unrelated_store;
          Alcotest.test_case "mayoverlap kills" `Quick test_cse_mayoverlap_kills;
          Alcotest.test_case "distinct subscripts" `Quick test_cse_distinct_subscripts_kept;
          Alcotest.test_case "shrinks DDG" `Quick test_cse_reduces_ddg_size;
          QCheck_alcotest.to_alcotest prop_cse_semantics;
        ] );
      ( "lint",
        [
          Alcotest.test_case "unused temp" `Quick test_lint_unused_temp;
          Alcotest.test_case "dead store" `Quick test_lint_dead_store;
          Alcotest.test_case "wrapping subscript" `Quick test_lint_wrapping_subscript;
          Alcotest.test_case "array usage" `Quick test_lint_array_usage;
          Alcotest.test_case "scalars" `Quick test_lint_scalars;
          Alcotest.test_case "clean kernel" `Quick test_lint_clean_kernel;
          Alcotest.test_case "workloads warning-free" `Quick
            test_lint_workloads_clean_of_warnings;
        ] );
    ]
