open Vliw_ir

let sample_src =
  {|
# a simple fir-like kernel
kernel fir {
  array x : i16[256] = ramp(0, 3)
  array y : i16[256] = zero
  scalar acc : i64 = 10
  trip 64
  body {
    let t = x[2*i] + x[2*i + 1]
    y[i] = t
    acc = acc + t
  }
}
|}

let parse () = Parser.parse_kernel sample_src

(* --- Lexer --- *)

let test_lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "a[3] = b + 12 # comment\n<< <= < ==") in
  Alcotest.(check int) "token count" 13 (List.length toks);
  Alcotest.(check bool) "comment skipped" true
    (not (List.exists (function Lexer.IDENT "comment" -> true | _ -> false) toks))

let test_lexer_positions () =
  match Lexer.tokenize "ab\n  cd" with
  | [ (_, p1); (_, p2); (Lexer.EOF, _) ] ->
    Alcotest.(check (pair int int)) "ab at 1:1" (1, 1) (p1.Lexer.line, p1.Lexer.col);
    Alcotest.(check (pair int int)) "cd at 2:3" (2, 3) (p2.Lexer.line, p2.Lexer.col)
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try ignore (Lexer.tokenize "a $ b"); false with Lexer.Error _ -> true)

(* --- Parser --- *)

let test_parse_kernel () =
  let k = parse () in
  Alcotest.(check string) "name" "fir" k.Ast.k_name;
  Alcotest.(check int) "arrays" 2 (List.length k.k_arrays);
  Alcotest.(check int) "scalars" 1 (List.length k.k_scalars);
  Alcotest.(check int) "trip" 64 k.k_trip;
  Alcotest.(check int) "stmts" 3 (List.length k.k_body)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check bool) "mul binds tighter" true
    (match e with
    | Ast.Binop (Add, Int _, Binop (Mul, _, _)) -> true
    | _ -> false)

let test_parse_associativity () =
  let e = Parser.parse_expr "a - b - c" in
  Alcotest.(check bool) "left assoc" true
    (match e with
    | Ast.Binop (Sub, Binop (Sub, Var "a", Var "b"), Var "c") -> true
    | _ -> false)

let test_parse_shift_vs_cmp () =
  Alcotest.(check bool) "<< parses as shift" true
    (match Parser.parse_expr "a << 2" with
    | Ast.Binop (Shl, _, _) -> true
    | _ -> false);
  Alcotest.(check bool) "<= parses as cmp" true
    (match Parser.parse_expr "a <= 2" with
    | Ast.Binop (Le, _, _) -> true
    | _ -> false)

let test_parse_gt_flips () =
  Alcotest.(check bool) "a > b becomes b < a" true
    (match Parser.parse_expr "a > b" with
    | Ast.Binop (Lt, Var "b", Var "a") -> true
    | _ -> false)

let test_parse_neg_literal_folds () =
  Alcotest.(check bool) "-5 is a literal" true
    (match Parser.parse_expr "-5" with Ast.Int n -> n = -5L | _ -> false)

let test_parse_calls () =
  Alcotest.(check bool) "min" true
    (match Parser.parse_expr "min(a, 3)" with
    | Ast.Binop (Min, Var "a", Int _) -> true
    | _ -> false);
  Alcotest.(check bool) "select" true
    (match Parser.parse_expr "select(a, 1, 2)" with
    | Ast.Select (_, _, _) -> true
    | _ -> false)

let test_parse_errors_have_position () =
  match Parser.parse_kernels "kernel k { body { let = 3 } }" with
  | exception Parser.Error (_, pos) ->
    Alcotest.(check bool) "line 1" true (pos.Lexer.line = 1)
  | _ -> Alcotest.fail "expected syntax error"

let test_parse_requires_body () =
  match Parser.parse_kernels "kernel k { trip 4 }" with
  | exception Parser.Error (msg, _) ->
    Alcotest.(check bool) "mentions body" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected error for missing body"

let test_parse_multiple_kernels () =
  let src = "kernel a { body { } }\nkernel b { body { } }" in
  Alcotest.(check int) "two kernels" 2 (List.length (Parser.parse_kernels src))

let test_roundtrip_sample () =
  let k = parse () in
  let k' = Parser.parse_kernel (Pp.kernel_to_string k) in
  Alcotest.(check bool) "print/parse round-trip" true (k = k')

(* --- Typecheck --- *)

let expect_error src frag =
  match Typecheck.check (Parser.parse_kernel src) with
  | Ok _ -> Alcotest.failf "expected error mentioning %s" frag
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      nn = 0 || go 0
    in
    Alcotest.(check bool) (Printf.sprintf "error %S mentions %s" e frag) true
      (contains e frag)

let test_typecheck_ok () =
  match Typecheck.check (parse ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_typecheck_unknown_var () =
  expect_error "kernel k { body { let t = zz + 1 } }" "zz"

let test_typecheck_unknown_array () =
  expect_error "kernel k { body { let t = a[i] } }" "a"

let test_typecheck_double_assign () =
  expect_error
    "kernel k { scalar s : i64 = 0 body { s = 1 s = 2 } }"
    "more than once"

let test_typecheck_redefine_temp () =
  expect_error "kernel k { body { let t = 1 let t = 2 } }" "redefinition"

let test_typecheck_float_subscript () =
  expect_error
    "kernel k { array a : i32[8] = zero array f : f64[8] = zero body { let t = a[f[0]] } }"
    "float"

let test_typecheck_mixed_classes () =
  expect_error
    "kernel k { array f : f64[8] = zero body { let t = f[0] + 1 } }"
    "mixed"

let test_typecheck_bitand_float () =
  expect_error
    "kernel k { array f : f64[8] = zero body { let t = f[0] & f[1] } }"
    "float"

let test_typecheck_mayoverlap_unknown () =
  expect_error "kernel k { array a : i8[4] = zero mayoverlap b body { } }" "b"

let test_typecheck_induction_shadow () =
  expect_error "kernel k { body { let i = 3 } }" "induction"

(* --- Layout --- *)

let test_layout_alignment () =
  let k = parse () in
  let l = Layout.make ~align:32 k in
  Alcotest.(check int) "x at 0" 0 (Layout.base l "x");
  Alcotest.(check int) "y block aligned" 0 (Layout.base l "y" mod 32);
  Alcotest.(check bool) "disjoint" true (Layout.base l "y" >= 512)

let test_layout_padding () =
  let k = parse () in
  let l0 = Layout.make ~align:32 ~pad:0 k in
  let l1 = Layout.make ~align:32 ~pad:32 k in
  Alcotest.(check bool) "padding shifts later arrays" true
    (Layout.base l1 "y" > Layout.base l0 "y")

let test_layout_addr_wraps () =
  let k = parse () in
  let l = Layout.make k in
  Alcotest.(check int) "wraps modulo length"
    (Layout.addr l ~arr:"x" ~elt_bytes:2 ~idx:0)
    (Layout.addr l ~arr:"x" ~elt_bytes:2 ~idx:256)

let test_wrap_index () =
  Alcotest.(check int) "positive" 3 (Layout.wrap_index ~len:8 11);
  Alcotest.(check int) "negative" 5 (Layout.wrap_index ~len:8 (-3))

(* --- Sites --- *)

let test_sites_order () =
  let k = parse () in
  let sites = Sites.of_kernel k in
  Alcotest.(check int) "3 memory sites" 3 (List.length sites);
  let s0 = List.nth sites 0 and s2 = List.nth sites 2 in
  Alcotest.(check string) "first is x load" "x" s0.Sites.site_arr;
  Alcotest.(check bool) "first is load" false s0.site_is_store;
  Alcotest.(check bool) "last is store" true s2.site_is_store;
  Alcotest.(check string) "store to y" "y" s2.site_arr

let test_sites_nested_loads () =
  let k =
    Parser.parse_kernel
      "kernel k { array a : i32[16] = modpat(16) array b : i32[16] = zero body { b[a[i]] = a[i] } }"
  in
  let sites = Sites.of_kernel k in
  (* order: subscript load a[i], value load a[i], then store b *)
  Alcotest.(check (list string)) "canonical order" [ "a"; "a"; "b" ]
    (List.map (fun s -> s.Sites.site_arr) sites);
  Alcotest.(check (list bool)) "store last" [ false; false; true ]
    (List.map (fun s -> s.Sites.site_is_store) sites)

(* --- Interpreter --- *)

let run_kernel ?trip src =
  let k = Parser.parse_kernel src in
  let l = Layout.make k in
  (k, l, Interp.run ?trip ~layout:l k)

let test_interp_fir () =
  let k = parse () in
  let l = Layout.make k in
  let r = Interp.run ~layout:l k in
  (* y[i] = x[2i] + x[2i+1] = (6i) + (6i+3) = 12i + 3, truncated to i16 *)
  List.iteri
    (fun idx _ ->
      if idx < 64 then
        let got = Sem.load_bytes r.Interp.memory (Layout.base l "y" + (2 * idx)) Ast.I16 in
        Alcotest.(check int64)
          (Printf.sprintf "y[%d]" idx)
          (Int64.of_int ((12 * idx) + 3))
          got)
    (List.init 64 Fun.id);
  (* acc = 10 + sum of (12i+3) for i in 0..63 *)
  let expect = 10 + (12 * (63 * 64 / 2)) + (3 * 64) in
  Alcotest.(check int64) "acc" (Int64.of_int expect)
    (List.assoc "acc" r.final_scalars)

let test_interp_events_program_order () =
  let _, _, r = run_kernel sample_src in
  Alcotest.(check int) "3 events per iteration" (3 * 64) (Array.length r.Interp.events);
  Array.iteri
    (fun idx ev -> Alcotest.(check int) "seq is dense" idx ev.Interp.ev_seq)
    r.events;
  (* within an iteration, sites are 0,1,2 *)
  Alcotest.(check (list int)) "first iteration sites" [ 0; 1; 2 ]
    (List.map (fun i -> r.events.(i).Interp.ev_site) [ 0; 1; 2 ])

let test_interp_scalar_reads_start_of_iteration () =
  (* s reads 0 in iteration 0 even though assigned before the store *)
  let src =
    "kernel k { array a : i64[8] = zero scalar s : i64 = 7 trip 2 body { s = s + 1 a[i] = s } }"
  in
  let _, l, r = run_kernel src in
  let v0 = Sem.load_bytes r.Interp.memory (Layout.base l "a") Ast.I64 in
  Alcotest.(check int64) "iteration 0 stores initial value" 7L v0;
  let v1 = Sem.load_bytes r.Interp.memory (Layout.base l "a" + 8) Ast.I64 in
  Alcotest.(check int64) "iteration 1 sees update" 8L v1

let test_interp_truncation () =
  let src =
    "kernel k { array a : i8[4] = zero trip 1 body { a[0] = 300 } }"
  in
  let _, l, r = run_kernel src in
  Alcotest.(check int64) "i8 truncates 300 -> 44" 44L
    (Sem.load_bytes r.Interp.memory (Layout.base l "a") Ast.I8)

let test_interp_sign_extension () =
  let src = "kernel k { array a : i8[4] = zero trip 1 body { a[0] = 0 - 1 } }" in
  let _, l, r = run_kernel src in
  Alcotest.(check int64) "i8 load sign-extends" (-1L)
    (Sem.load_bytes r.Interp.memory (Layout.base l "a") Ast.I8)

let test_interp_index_wrap () =
  let src =
    "kernel k { array a : i32[4] = zero trip 1 body { a[5] = 9 } }"
  in
  let _, l, r = run_kernel src in
  Alcotest.(check int64) "index 5 wraps to 1" 9L
    (Sem.load_bytes r.Interp.memory (Layout.base l "a" + 4) Ast.I32)

let test_interp_div_by_zero_total () =
  let src =
    "kernel k { array a : i64[2] = zero trip 1 body { a[0] = 7 / a[1] a[1] = 7 % 0 } }"
  in
  let _, l, r = run_kernel src in
  Alcotest.(check int64) "div by zero is 0" 0L
    (Sem.load_bytes r.Interp.memory (Layout.base l "a") Ast.I64)

let test_interp_float_arith () =
  (* f64 arrays: ramp initialises raw integer bit patterns, so build values
     from integer loads instead: use select and comparisons on ints, store
     float results of float ops on loaded float bits *)
  let src =
    "kernel k { array f : f64[4] = zero array g : f64[4] = zero trip 4 body { g[i] = f[i] + f[i] } }"
  in
  let _, _, r = run_kernel src in
  (* f[i] appears twice and is loaded twice (no CSE in the interpreter):
     3 events per iteration *)
  Alcotest.(check int) "ran" 12 (Array.length r.Interp.events)

let test_interp_select () =
  let src =
    "kernel k { array a : i64[8] = ramp(0,1) array b : i64[8] = zero trip 8 body { b[i] = select(a[i] < 4, 100, 200) } }"
  in
  let _, l, r = run_kernel src in
  let v i = Sem.load_bytes r.Interp.memory (Layout.base l "b" + (8 * i)) Ast.I64 in
  Alcotest.(check int64) "b[0]" 100L (v 0);
  Alcotest.(check int64) "b[7]" 200L (v 7)

let test_interp_modpat_init () =
  let src =
    "kernel k { array a : i32[8] = modpat(3) array b : i32[8] = zero trip 8 body { b[i] = a[i] } }"
  in
  let _, l, r = run_kernel src in
  let v i = Sem.load_bytes r.Interp.memory (Layout.base l "b" + (4 * i)) Ast.I32 in
  Alcotest.(check int64) "a[4] = 1" 1L (v 4);
  Alcotest.(check int64) "a[5] = 2" 2L (v 5)

let test_interp_trip_override () =
  let k = parse () in
  let l = Layout.make k in
  let r = Interp.run ~trip:2 ~layout:l k in
  Alcotest.(check int) "2 iterations" 6 (Array.length r.Interp.events)

(* --- QCheck: expression round-trip --- *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "i" ] in
  let binop =
    oneofl
      [ Ast.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Min; Max; Lt; Le;
        Eq; Ne ]
  in
  sized @@ fix (fun self n ->
    if n <= 0 then
      oneof [ map (fun v -> Ast.Var v) var;
              map (fun x -> Ast.Int (Int64.of_int x)) (int_range (-100) 100) ]
    else
      frequency
        [
          (3, map2 (fun op (a, b) -> Ast.Binop (op, a, b)) binop
                (pair (self (n / 2)) (self (n / 2))));
          (1, map (fun a -> Ast.Unop (Neg, a))
                (oneof [ map (fun v -> Ast.Var v) var ]));
          (1, map (fun a -> Ast.Unop (Not, a)) (self (n / 2)));
          (1, map (fun a -> Ast.Unop (Abs, a)) (self (n / 2)));
          (1, map2 (fun v idx -> Ast.Load (v, idx)) var (self (n / 2)));
          (1, map (fun (c, (a, b)) -> Ast.Select (c, a, b))
                (pair (self (n / 3)) (pair (self (n / 3)) (self (n / 3)))));
        ])

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr print/parse round-trip" ~count:500
    (QCheck.make gen_expr ~print:Pp.expr_to_string)
    (fun e -> Parser.parse_expr (Pp.expr_to_string e) = e)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter is deterministic" ~count:50
    QCheck.(int_bound 1000)
    (fun seed ->
      let src =
        Printf.sprintf
          "kernel k { array a : i32[32] = random(%d) array b : i32[32] = zero trip 16 body { b[i] = a[i] * 3 } }"
          seed
      in
      let k = Parser.parse_kernel src in
      let l = Layout.make k in
      let r1 = Interp.run ~layout:l k and r2 = Interp.run ~layout:l k in
      Bytes.equal r1.Interp.memory r2.Interp.memory)

let () =
  Alcotest.run "ir"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "rejects garbage" `Quick test_lexer_rejects_garbage;
        ] );
      ( "parser",
        [
          Alcotest.test_case "kernel" `Quick test_parse_kernel;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "associativity" `Quick test_parse_associativity;
          Alcotest.test_case "shift vs cmp" `Quick test_parse_shift_vs_cmp;
          Alcotest.test_case "gt flips" `Quick test_parse_gt_flips;
          Alcotest.test_case "neg literal" `Quick test_parse_neg_literal_folds;
          Alcotest.test_case "calls" `Quick test_parse_calls;
          Alcotest.test_case "error positions" `Quick test_parse_errors_have_position;
          Alcotest.test_case "requires body" `Quick test_parse_requires_body;
          Alcotest.test_case "multiple kernels" `Quick test_parse_multiple_kernels;
          Alcotest.test_case "sample round-trip" `Quick test_roundtrip_sample;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts sample" `Quick test_typecheck_ok;
          Alcotest.test_case "unknown var" `Quick test_typecheck_unknown_var;
          Alcotest.test_case "unknown array" `Quick test_typecheck_unknown_array;
          Alcotest.test_case "double assign" `Quick test_typecheck_double_assign;
          Alcotest.test_case "redefine temp" `Quick test_typecheck_redefine_temp;
          Alcotest.test_case "float subscript" `Quick test_typecheck_float_subscript;
          Alcotest.test_case "mixed classes" `Quick test_typecheck_mixed_classes;
          Alcotest.test_case "bitand float" `Quick test_typecheck_bitand_float;
          Alcotest.test_case "mayoverlap unknown" `Quick test_typecheck_mayoverlap_unknown;
          Alcotest.test_case "induction shadow" `Quick test_typecheck_induction_shadow;
        ] );
      ( "layout",
        [
          Alcotest.test_case "alignment" `Quick test_layout_alignment;
          Alcotest.test_case "padding" `Quick test_layout_padding;
          Alcotest.test_case "addr wraps" `Quick test_layout_addr_wraps;
          Alcotest.test_case "wrap index" `Quick test_wrap_index;
        ] );
      ( "sites",
        [
          Alcotest.test_case "order" `Quick test_sites_order;
          Alcotest.test_case "nested loads" `Quick test_sites_nested_loads;
        ] );
      ( "interp",
        [
          Alcotest.test_case "fir semantics" `Quick test_interp_fir;
          Alcotest.test_case "event order" `Quick test_interp_events_program_order;
          Alcotest.test_case "scalar start-of-iteration" `Quick
            test_interp_scalar_reads_start_of_iteration;
          Alcotest.test_case "truncation" `Quick test_interp_truncation;
          Alcotest.test_case "sign extension" `Quick test_interp_sign_extension;
          Alcotest.test_case "index wrap" `Quick test_interp_index_wrap;
          Alcotest.test_case "div by zero" `Quick test_interp_div_by_zero_total;
          Alcotest.test_case "float arith" `Quick test_interp_float_arith;
          Alcotest.test_case "select" `Quick test_interp_select;
          Alcotest.test_case "modpat init" `Quick test_interp_modpat_init;
          Alcotest.test_case "trip override" `Quick test_interp_trip_override;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_expr_roundtrip; prop_interp_deterministic ] );
    ]
