open Vliw_alias
module D = Disambiguate

let no_overlap _ _ = false

let acc ?affine arr bytes = { D.a_array = arr; a_affine = affine; a_bytes = bytes }

let dep ?(before = true) a b =
  D.dependence ~may_overlap:no_overlap ~first:a ~second:b
    ~first_before_second:before

let check_dep name expected got =
  let pp = function
    | D.No_dep -> "No_dep"
    | D.Dep { dist; exact } -> Printf.sprintf "Dep{dist=%d; exact=%b}" dist exact
  in
  Alcotest.(check string) name (pp expected) (pp got)

(* --- unit cases --- *)

let test_different_arrays_independent () =
  check_dep "x vs y" D.No_dep
    (dep (acc ~affine:(4, 0) "x" 4) (acc ~affine:(4, 0) "y" 4))

let test_mayoverlap_conservative () =
  let mo a b = (a = "x" && b = "y") || (a = "y" && b = "x") in
  let v =
    D.dependence ~may_overlap:mo
      ~first:(acc ~affine:(4, 0) "x" 4)
      ~second:(acc ~affine:(4, 0) "y" 4)
      ~first_before_second:true
  in
  check_dep "may-overlap arrays" (D.Dep { dist = 0; exact = false }) v

let test_same_address_same_iter () =
  check_dep "a[i] then a[i]" (D.Dep { dist = 0; exact = true })
    (dep (acc ~affine:(4, 0) "a" 4) (acc ~affine:(4, 0) "a" 4))

let test_same_address_reverse_order () =
  (* strided a[i] against itself in reverse program order: the next
     iteration touches a different element, so no dependence... *)
  check_dep "strided self, reverse order" D.No_dep
    (dep ~before:false (acc ~affine:(4, 0) "a" 4) (acc ~affine:(4, 0) "a" 4));
  (* ...but a fixed-address access repeats every iteration *)
  check_dep "fixed self, reverse order" (D.Dep { dist = 1; exact = true })
    (dep ~before:false (acc ~affine:(0, 0) "a" 4) (acc ~affine:(0, 0) "a" 4))

let test_loop_carried_distance () =
  (* first touches a[i+2], second touches a[i]: second at iter k+2 hits the
     same address *)
  check_dep "distance 2" (D.Dep { dist = 2; exact = true })
    (dep (acc ~affine:(4, 8) "a" 4) (acc ~affine:(4, 0) "a" 4))

let test_negative_direction_no_dep () =
  (* first touches a[i], second touches a[i+2]: the overlap happens at a
     NEGATIVE distance for (first, second) ordering, so no dependence this
     direction *)
  check_dep "would need negative distance" D.No_dep
    (dep (acc ~affine:(4, 0) "a" 4) (acc ~affine:(4, 8) "a" 4))

let test_disjoint_even_odd () =
  (* stride 8 covering bytes [0,4) vs [4,8): never overlap *)
  check_dep "even/odd words" D.No_dep
    (dep (acc ~affine:(8, 0) "a" 4) (acc ~affine:(8, 4) "a" 4))

let test_partial_overlap_widths () =
  (* 8-byte access at stride 8 overlaps 4-byte access at offset 4 *)
  check_dep "wide vs narrow" (D.Dep { dist = 0; exact = true })
    (dep (acc ~affine:(8, 0) "a" 8) (acc ~affine:(8, 4) "a" 4))

let test_fixed_address_recurrence () =
  (* both access a[0] every iteration: store/store at every distance,
     minimum is d0 *)
  check_dep "scalar-in-memory" (D.Dep { dist = 0; exact = true })
    (dep (acc ~affine:(0, 0) "a" 8) (acc ~affine:(0, 0) "a" 8));
  check_dep "self" (D.Dep { dist = 1; exact = true })
    (dep ~before:false (acc ~affine:(0, 0) "a" 8) (acc ~affine:(0, 0) "a" 8))

let test_fixed_disjoint () =
  check_dep "disjoint fixed slots" D.No_dep
    (dep (acc ~affine:(0, 0) "a" 8) (acc ~affine:(0, 8) "a" 8))

let test_indirect_conservative () =
  check_dep "indirect vs affine" (D.Dep { dist = 0; exact = false })
    (dep (acc "a" 4) (acc ~affine:(4, 0) "a" 4));
  check_dep "indirect vs indirect" (D.Dep { dist = 0; exact = false })
    (dep (acc "a" 4) (acc "a" 4))

let test_unequal_strides_residue_disjoint () =
  (* stride 8 offset 0 width 2 vs stride 4 offset 2 width 2:
     gcd = 4; residues {0,1} vs {2,3} disjoint *)
  check_dep "residue-disjoint" D.No_dep
    (dep (acc ~affine:(8, 0) "a" 2) (acc ~affine:(4, 2) "a" 2))

let test_unequal_strides_conservative () =
  (* stride 8 vs stride 4, same residues: conservative dep *)
  check_dep "residues collide" (D.Dep { dist = 0; exact = false })
    (dep (acc ~affine:(8, 0) "a" 4) (acc ~affine:(4, 0) "a" 4))

let test_negative_stride () =
  (* walking down: first a[-i+8 words], second a[-i] words behind it.
     first at iter k: -4k+32 .. +4; second at iter k+d: -4(k+d) .. +4.
     overlap needs -4d + 0 = 32 - 0 -> d = -8: impossible, so No_dep;
     flipped operands give distance 8. *)
  check_dep "down-walk no dep" D.No_dep
    (dep (acc ~affine:(-4, 32) "a" 4) (acc ~affine:(-4, 0) "a" 4));
  check_dep "down-walk dep at 8" (D.Dep { dist = 8; exact = true })
    (dep (acc ~affine:(-4, 0) "a" 4) (acc ~affine:(-4, 32) "a" 4))

let test_residues_disjoint_helper () =
  Alcotest.(check bool) "disjoint" true
    (D.residues_disjoint ~scale_a:8 ~off_a:0 ~bytes_a:2 ~scale_b:4 ~off_b:2
       ~bytes_b:2);
  Alcotest.(check bool) "wide access covers everything" false
    (D.residues_disjoint ~scale_a:8 ~off_a:0 ~bytes_a:4 ~scale_b:4 ~off_b:2
       ~bytes_b:2)

(* --- soundness property: compare against a brute-force simulation of the
   two address streams --- *)

let brute_force_min_dist ~s1 ~o1 ~b1 ~s2 ~o2 ~b2 ~d0 ~iters =
  let overlap k d =
    let a_lo = (s1 * k) + o1 and b_lo = (s2 * (k + d)) + o2 in
    a_lo < b_lo + b2 && b_lo < a_lo + b1
  in
  let found = ref None in
  for d = d0 to iters do
    if !found = None then
      for k = 0 to iters do
        if !found = None && overlap k d then found := Some d
      done
  done;
  !found

let prop_equal_stride_exact =
  QCheck.Test.make ~name:"equal-stride verdict matches brute force" ~count:1000
    QCheck.(
      quad (int_range (-16) 16)
        (pair (int_range (-32) 32) (int_range (-32) 32))
        (pair (int_range 1 8) (int_range 1 8))
        bool)
    (fun (s, (o1, o2), (b1, b2), before) ->
      let d0 = if before then 0 else 1 in
      let verdict =
        D.dependence ~may_overlap:no_overlap
          ~first:(acc ~affine:(s, o1) "a" b1)
          ~second:(acc ~affine:(s, o2) "a" b2)
          ~first_before_second:before
      in
      let brute =
        brute_force_min_dist ~s1:s ~o1 ~b1 ~s2:s ~o2 ~b2 ~d0 ~iters:80
      in
      match (verdict, brute) with
      | D.No_dep, None -> true
      | D.Dep { dist; _ }, Some d -> dist = d
      | D.No_dep, Some _ -> false (* unsound! *)
      | D.Dep { dist; _ }, None ->
        (* sound but conservative is allowed only beyond the brute-force
           horizon *)
        dist > 80)

let prop_unequal_stride_sound =
  QCheck.Test.make ~name:"unequal-stride verdict is conservative" ~count:1000
    QCheck.(
      quad
        (pair (int_range (-12) 12) (int_range (-12) 12))
        (pair (int_range (-24) 24) (int_range (-24) 24))
        (pair (int_range 1 8) (int_range 1 8))
        bool)
    (fun ((s1, s2), (o1, o2), (b1, b2), before) ->
      QCheck.assume (s1 <> s2);
      let d0 = if before then 0 else 1 in
      let verdict =
        D.dependence ~may_overlap:no_overlap
          ~first:(acc ~affine:(s1, o1) "a" b1)
          ~second:(acc ~affine:(s2, o2) "a" b2)
          ~first_before_second:before
      in
      let brute =
        brute_force_min_dist ~s1 ~o1 ~b1 ~s2 ~o2 ~b2 ~d0 ~iters:60
      in
      match (verdict, brute) with
      | D.No_dep, Some _ -> false (* unsound *)
      | D.No_dep, None -> true
      | D.Dep { dist; _ }, Some d -> dist <= d (* may be conservative *)
      | D.Dep _, None -> true)

let () =
  Alcotest.run "alias"
    [
      ( "unit",
        [
          Alcotest.test_case "different arrays" `Quick test_different_arrays_independent;
          Alcotest.test_case "mayoverlap" `Quick test_mayoverlap_conservative;
          Alcotest.test_case "same address same iter" `Quick test_same_address_same_iter;
          Alcotest.test_case "reverse order" `Quick test_same_address_reverse_order;
          Alcotest.test_case "loop carried" `Quick test_loop_carried_distance;
          Alcotest.test_case "negative direction" `Quick test_negative_direction_no_dep;
          Alcotest.test_case "even/odd disjoint" `Quick test_disjoint_even_odd;
          Alcotest.test_case "partial overlap" `Quick test_partial_overlap_widths;
          Alcotest.test_case "fixed address" `Quick test_fixed_address_recurrence;
          Alcotest.test_case "fixed disjoint" `Quick test_fixed_disjoint;
          Alcotest.test_case "indirect" `Quick test_indirect_conservative;
          Alcotest.test_case "residue disjoint" `Quick test_unequal_strides_residue_disjoint;
          Alcotest.test_case "residues collide" `Quick test_unequal_strides_conservative;
          Alcotest.test_case "negative stride" `Quick test_negative_stride;
          Alcotest.test_case "residue helper" `Quick test_residues_disjoint_helper;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_equal_stride_exact; prop_unequal_stride_sound ] );
    ]
