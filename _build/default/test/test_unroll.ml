module Ir = Vliw_ir
module Unroll = Vliw_ir.Unroll
module Lower = Vliw_lower.Lower
module M = Vliw_arch.Machine
module Profile = Vliw_profile.Profile

let parse = Ir.Parser.parse_kernel

let stream_src =
  "kernel s { array a : i32[256] = ramp(2,3) array b : i32[256] = zero \
   scalar acc : i64 = 7 trip 64 body { let t = a[i] * 5 b[i] = t acc = acc \
   + t } }"

let run_mem k =
  let layout = Ir.Layout.make k in
  Ir.Interp.run ~layout k

let test_unroll_preserves_semantics () =
  let k = parse stream_src in
  let k4 = Unroll.unroll ~factor:4 k in
  (match Ir.Typecheck.check k4 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "trip divided" 16 k4.Ir.Ast.k_trip;
  let r = run_mem k and r4 = run_mem k4 in
  Alcotest.(check bool) "memory identical" true
    (Bytes.equal r.Ir.Interp.memory r4.Ir.Interp.memory);
  Alcotest.(check int64) "accumulator identical"
    (List.assoc "acc" r.Ir.Interp.final_scalars)
    (List.assoc "acc" r4.Ir.Interp.final_scalars)

let test_unroll_scalar_threading () =
  (* running product, narrow scalar: threading + truncation both matter *)
  let k =
    parse
      "kernel p { array a : i16[64] = ramp(1,1) array out : i16[64] = zero \
       scalar prod : i16 = 1 trip 32 body { prod = prod * 3 + a[i] out[i] = \
       prod } }"
  in
  let k2 = Unroll.unroll ~factor:2 k in
  let r = run_mem k and r2 = run_mem k2 in
  Alcotest.(check bool) "i16 scalar chain identical" true
    (Bytes.equal r.Ir.Interp.memory r2.Ir.Interp.memory)

let test_unroll_factor_one_identity () =
  let k = parse stream_src in
  Alcotest.(check bool) "factor 1 is the identity" true (Unroll.unroll ~factor:1 k == k)

let test_unroll_rejects_bad_factor () =
  let k = parse stream_src in
  Alcotest.(check bool) "non-dividing factor" true
    (try ignore (Unroll.unroll ~factor:7 k); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero factor" true
    (try ignore (Unroll.unroll ~factor:0 k); false with Invalid_argument _ -> true)

let test_unroll_in_place_chain () =
  (* aliasing in-place kernel must stay correct through unrolling *)
  let k =
    parse
      "kernel ip { array a : i32[129] = ramp(3,7) trip 128 body { a[i] = a[i] + a[i + 1] } }"
  in
  let k4 = Unroll.unroll ~factor:4 k in
  let r = run_mem k and r4 = run_mem k4 in
  Alcotest.(check bool) "in-place identical" true
    (Bytes.equal r.Ir.Interp.memory r4.Ir.Interp.memory)

let test_best_factor_stream () =
  (* stride-1 i32 under 4B interleave, 4 clusters: NxI = 16B; factor 4
     makes every access 16B-strided *)
  let k = parse stream_src in
  Alcotest.(check int) "factor 4" 4
    (Lower.best_unroll_factor ~nxi_bytes:16 ~max_factor:8 k)

let test_best_factor_already_stable () =
  let k =
    parse
      "kernel s { array a : i32[512] = zero trip 64 body { a[4*i] = 1 } }"
  in
  Alcotest.(check int) "already stable: stay at 1" 1
    (Lower.best_unroll_factor ~nxi_bytes:16 ~max_factor:8 k)

let test_best_factor_indirect_hopeless () =
  let k =
    parse
      "kernel s { array a : i32[64] = modpat(64) scalar s : i64 = 0 trip 64 body { s = s + a[a[i] % 64] } }"
  in
  (* the outer access is indirect; only the inner a[i] is affine: factor 4
     stabilizes it *)
  Alcotest.(check int) "factor driven by the affine site" 4
    (Lower.best_unroll_factor ~nxi_bytes:16 ~max_factor:8 k)

let test_unroll_improves_locality_end_to_end () =
  (* the Section 2.2 claim in one test: unrolling a stride-1 stream by 4
     lifts the profile's predictability (and with it PrefClus's ceiling) *)
  let machine = M.table2 in
  let k = parse stream_src in
  let p1 =
    Profile.run ~machine ~layout:(Ir.Layout.make k) k |> Profile.predictability
  in
  let k4 = Unroll.unroll ~factor:4 k in
  let p4 =
    Profile.run ~machine ~layout:(Ir.Layout.make k4) k4 |> Profile.predictability
  in
  Alcotest.(check bool)
    (Printf.sprintf "predictability %.2f -> %.2f" p1 p4)
    true
    (p4 > p1 +. 0.2);
  Alcotest.(check (float 1e-9)) "unrolled stream fully predictable" 1.0 p4

(* --- padding --- *)

let test_padding_search_returns_valid_pad () =
  let machine = M.table2 in
  let k = parse stream_src in
  let pad, score = Profile.best_padding ~machine k in
  Alcotest.(check bool) "pad within a block" true (pad >= 0 && pad <= 32);
  Alcotest.(check bool) "score is a fraction" true (score > 0. && score <= 1.)

let test_padding_can_matter () =
  (* two arrays accessed at the same index: with pad multiples of 16 their
     elements share a home; other pads split them. The search must find a
     pad whose predictability is at least the default's. *)
  let machine = M.table2 in
  let k =
    parse
      "kernel pd { array a : i32[68] = zero array b : i32[68] = zero trip 16 \
       body { b[4*i] = a[4*i] + 1 } }"
  in
  let default_score =
    Profile.run ~machine ~layout:(Ir.Layout.make k) k |> Profile.predictability
  in
  let _, best_score = Profile.best_padding ~machine k in
  Alcotest.(check bool) "search never loses" true (best_score >= default_score -. 1e-9)

(* --- property: unrolling is semantics-preserving on random kernels --- *)

let gen_src =
  QCheck.Gen.(
    let* stride = int_range 1 3 in
    let* off = int_range 0 3 in
    let* seed = int_range 0 99 in
    return
      (Printf.sprintf
         "kernel q { array a : i32[%d] = random(%d) scalar s : i64 = 1 trip 64 \
          body { let t = a[%d*i + %d] s = s + t * 3 a[%d*i] = t + s } }"
         (64 * (stride + 1)) seed stride off stride))

let prop_unroll_semantics =
  QCheck.Test.make ~name:"unroll preserves interpreter results" ~count:100
    (QCheck.make gen_src ~print:Fun.id)
    (fun src ->
      let k = parse src in
      List.for_all
        (fun factor ->
          let ku = Unroll.unroll ~factor k in
          Result.is_ok (Ir.Typecheck.check ku)
          &&
          let r = run_mem k and ru = run_mem ku in
          Bytes.equal r.Ir.Interp.memory ru.Ir.Interp.memory
          && r.Ir.Interp.final_scalars = ru.Ir.Interp.final_scalars)
        [ 2; 4; 8 ])

let prop_unrolled_lowers_and_schedules =
  QCheck.Test.make ~name:"unrolled kernels compile end to end" ~count:25
    (QCheck.make gen_src ~print:Fun.id)
    (fun src ->
      let k = Unroll.unroll ~factor:4 (parse src) in
      let low = Lower.lower k in
      match Vliw_sched.Driver.run (Vliw_sched.Driver.request M.table2) low.Lower.graph with
      | Ok s -> Vliw_sched.Schedule.validate low.Lower.graph s = Ok ()
      | Error _ -> false)

let () =
  Alcotest.run "unroll"
    [
      ( "semantics",
        [
          Alcotest.test_case "stream" `Quick test_unroll_preserves_semantics;
          Alcotest.test_case "scalar threading" `Quick test_unroll_scalar_threading;
          Alcotest.test_case "factor 1" `Quick test_unroll_factor_one_identity;
          Alcotest.test_case "bad factors" `Quick test_unroll_rejects_bad_factor;
          Alcotest.test_case "in-place chain" `Quick test_unroll_in_place_chain;
        ] );
      ( "factor search",
        [
          Alcotest.test_case "stream wants 4" `Quick test_best_factor_stream;
          Alcotest.test_case "stable stays 1" `Quick test_best_factor_already_stable;
          Alcotest.test_case "indirect" `Quick test_best_factor_indirect_hopeless;
          Alcotest.test_case "locality end to end" `Quick
            test_unroll_improves_locality_end_to_end;
        ] );
      ( "padding",
        [
          Alcotest.test_case "valid pad" `Quick test_padding_search_returns_valid_pad;
          Alcotest.test_case "never loses" `Quick test_padding_can_matter;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_unroll_semantics; prop_unrolled_lowers_and_schedules ] );
    ]
