module G = Vliw_ddg.Graph
module Chains = Vliw_core.Chains
module Ddgt = Vliw_core.Ddgt
module Specialize = Vliw_core.Specialize
module Lower = Vliw_lower.Lower
module Ir = Vliw_ir

let mr ?affine ?(bytes = 4) ?(site = 0) arr =
  { G.mr_array = arr; mr_affine = affine; mr_bytes = bytes; mr_float = false;
    mr_site = site }

let arith ?(lat = 1) name = G.Arith { aname = name; fu_int = true; latency = lat }

(* The paper's Figure 3 DDG.
   Sequential program order: n1 (load), n2 (load), n3 (store), n4 (store),
   n5 (add).
   Edges: RF n1->n4, RF n2->n5;
          MF n3->n1 d=1, MF n3->n2 d=1, MF n4->n2 d=1;
          MA n1->n3, n1->n4, n2->n3, n2->n4 (d=0);
          MO n3->n4 (d=0), MO n4->n3 (d=1). *)
type fig3 = { g : G.t; n1 : int; n2 : int; n3 : int; n4 : int; n5 : int }

let figure3 () =
  let g = G.create () in
  let n1 = (G.add_node g ~seq:1 (G.Load (mr ~site:0 "m"))).n_id in
  let n2 = (G.add_node g ~seq:2 (G.Load (mr ~site:1 "m"))).n_id in
  let n3 = (G.add_node g ~seq:3 (G.Store (mr ~site:2 "m"))).n_id in
  let n4 = (G.add_node g ~seq:4 (G.Store (mr ~site:3 "m"))).n_id in
  let n5 = (G.add_node g ~seq:5 (arith "add")).n_id in
  G.add_edge g G.RF ~src:n1 ~dst:n4;
  G.add_edge g G.RF ~src:n2 ~dst:n5;
  G.add_edge g ~dist:1 G.MF ~src:n3 ~dst:n1;
  G.add_edge g ~dist:1 G.MF ~src:n3 ~dst:n2;
  G.add_edge g ~dist:1 G.MF ~src:n4 ~dst:n2;
  G.add_edge g G.MA ~src:n1 ~dst:n3;
  G.add_edge g G.MA ~src:n1 ~dst:n4;
  G.add_edge g G.MA ~src:n2 ~dst:n3;
  G.add_edge g G.MA ~src:n2 ~dst:n4;
  G.add_edge g G.MO ~src:n3 ~dst:n4;
  G.add_edge g ~dist:1 G.MO ~src:n4 ~dst:n3;
  (match G.validate g with Ok () -> () | Error e -> Alcotest.fail e);
  { g; n1; n2; n3; n4; n5 }

let fig3_pref =
  (* Figure 3's profiled preferred clusters (0-based) *)
  let tbl =
    [ (0, [| 70; 30; 0; 0 |]); (1, [| 20; 50; 30; 0 |]);
      (2, [| 0; 10; 20; 70 |]); (3, [| 0; 0; 100; 0 |]) ]
  in
  fun (g : G.t) id ->
    match (G.node g id).n_op with
    | G.Load m | G.Store m -> List.assoc_opt m.G.mr_site tbl
    | _ -> None

(* --- chains --- *)

let test_fig3_chain () =
  let f = figure3 () in
  let cs = Chains.chains f.g in
  Alcotest.(check int) "one chain" 1 (List.length cs);
  Alcotest.(check (list int)) "n1..n4" [ f.n1; f.n2; f.n3; f.n4 ] (List.hd cs)

let test_fig3_ratios () =
  let f = figure3 () in
  Alcotest.(check (float 1e-9)) "CMR" 1.0 (Chains.cmr f.g);
  Alcotest.(check (float 1e-9)) "CAR" 0.8 (Chains.car f.g)

let test_chain_average_preferred_cluster () =
  (* paper: "all nodes will be scheduled in cluster 3 since this is their
     average preferred cluster" (our 0-based cluster 2) *)
  let f = figure3 () in
  let cons = Chains.prefclus f.g ~pref:(fig3_pref f.g) in
  List.iter
    (fun id ->
      Alcotest.(check int)
        (Printf.sprintf "node %d pinned to cluster 2" id)
        2
        (Hashtbl.find cons.Chains.pinned id))
    [ f.n1; f.n2; f.n3; f.n4 ];
  Alcotest.(check bool) "n5 not pinned" false
    (Hashtbl.mem cons.Chains.pinned f.n5)

let test_chains_mincoms_groups () =
  let f = figure3 () in
  let cons = Chains.mincoms f.g in
  Alcotest.(check int) "no pins" 0 (Hashtbl.length cons.Chains.pinned);
  Alcotest.(check int) "one group" 1 (List.length cons.Chains.grouped)

let test_independent_ops_no_chain_constraint () =
  let g = G.create () in
  let _ = G.add_node g (G.Load (mr "x")) in
  let _ = G.add_node g (G.Load (mr "y")) in
  let cs = Chains.chains g in
  Alcotest.(check int) "two singleton chains" 2 (List.length cs);
  let cons = Chains.mincoms g in
  Alcotest.(check int) "no groups for singletons" 0
    (List.length cons.Chains.grouped)

let test_empty_graph_ratios () =
  let g = G.create () in
  Alcotest.(check (float 1e-9)) "CMR 0" 0. (Chains.cmr g);
  Alcotest.(check (float 1e-9)) "CAR 0" 0. (Chains.car g)

(* --- DDGT: the Figure 3 -> Figure 5 transformation --- *)

let transform4 () =
  let f = figure3 () in
  (f, Ddgt.transform ~clusters:4 f.g)

let test_ddgt_replicates_dependent_stores () =
  let f, r = transform4 () in
  Alcotest.(check int) "both stores replicated" 2 (List.length r.Ddgt.replicas);
  List.iter
    (fun s ->
      let insts = List.assoc s r.Ddgt.replicas in
      Alcotest.(check int) "3 new instances" 3 (List.length insts);
      (* original pinned to cluster 0, replicas to 1..3 *)
      Alcotest.(check (option int)) "original is instance 0" (Some 0)
        (G.node r.Ddgt.graph s).n_replica;
      Alcotest.(check (list int)) "instances cover clusters 1..3" [ 1; 2; 3 ]
        (List.filter_map (fun i -> (G.node r.Ddgt.graph i).n_replica) insts
         |> List.sort compare))
    [ f.n3; f.n4 ]

let test_ddgt_input_left_intact () =
  let f = figure3 () in
  let before = (G.node_count f.g, List.length (G.edges f.g)) in
  let _ = Ddgt.transform ~clusters:4 f.g in
  Alcotest.(check (pair int int)) "input graph untouched" before
    (G.node_count f.g, List.length (G.edges f.g))

let test_ddgt_no_ma_left () =
  let _, r = transform4 () in
  Alcotest.(check int) "no MA edges" 0
    (List.length (List.filter (fun (e : G.edge) -> e.e_kind = G.MA) (G.edges r.Ddgt.graph)))

let test_ddgt_sync_counts () =
  let _, r = transform4 () in
  (* 4 original MA edges, each replicated to the 4 instances of its sink:
     16 removed; n1->n4-family subsumed by the replicated RF n1->inst(n4):
     4 of them removed silently; the rest get SYNC edges: 12 *)
  Alcotest.(check int) "ma removed" 16 r.Ddgt.ma_removed;
  Alcotest.(check int) "sync added" 12 r.Ddgt.sync_added

let test_ddgt_single_fake_consumer () =
  let f, r = transform4 () in
  (* the MA n1->n3 family needs a fake consumer: n1's only real consumer n4
     is a store sequentially posterior to and dependent on n3; the fake is
     then reused by all 4 instances *)
  Alcotest.(check int) "exactly one NEW_CONS" 1 (List.length r.Ddgt.fakes);
  let fake = List.hd r.Ddgt.fakes in
  Alcotest.(check bool) "fake consumes n1" true
    (List.exists
       (fun (e : G.edge) -> e.e_kind = G.RF && e.e_src = f.n1)
       (G.preds r.Ddgt.graph fake));
  (* the fake synchronizes every instance of n3 *)
  let sync_to_n3 =
    List.filter
      (fun (e : G.edge) ->
        e.e_kind = G.SYNC && (G.node r.Ddgt.graph e.e_dst).n_orig = f.n3)
      (G.succs r.Ddgt.graph fake)
  in
  Alcotest.(check int) "fake syncs all 4 instances of n3" 4
    (List.length sync_to_n3)

let test_ddgt_n5_syncs_stores () =
  let f, r = transform4 () in
  (* paper: MA n2->n3 and n2->n4 become SYNC n5->n3 and n5->n4 *)
  let syncs =
    List.filter (fun (e : G.edge) -> e.e_kind = G.SYNC) (G.succs r.Ddgt.graph f.n5)
  in
  let targets =
    List.map (fun (e : G.edge) -> (G.node r.Ddgt.graph e.e_dst).n_orig) syncs
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "n5 syncs instances of n3 and n4"
    (List.sort compare [ f.n3; f.n4 ])
    targets;
  Alcotest.(check int) "8 sync edges from n5" 8 (List.length syncs)

let test_ddgt_mf_edges_replicated () =
  let f, r = transform4 () in
  (* MF n3->n1 d=1 must now hold from every instance of n3 *)
  let mf_to_n1 =
    List.filter
      (fun (e : G.edge) ->
        e.e_kind = G.MF && (G.node r.Ddgt.graph e.e_src).n_orig = f.n3)
      (G.preds r.Ddgt.graph f.n1)
  in
  Alcotest.(check int) "4 MF edges into n1" 4 (List.length mf_to_n1)

let test_ddgt_store_store_same_cluster_pairing () =
  let f, r = transform4 () in
  (* MO n3->n4 exists exactly between same-cluster instances *)
  let mo_edges =
    List.filter
      (fun (e : G.edge) ->
        e.e_kind = G.MO && e.e_dist = 0
        && (G.node r.Ddgt.graph e.e_src).n_orig = f.n3
        && (G.node r.Ddgt.graph e.e_dst).n_orig = f.n4)
      (G.edges r.Ddgt.graph)
  in
  Alcotest.(check int) "4 paired MO edges" 4 (List.length mo_edges);
  List.iter
    (fun (e : G.edge) ->
      Alcotest.(check (option int)) "same cluster"
        (G.node r.Ddgt.graph e.e_src).n_replica
        (G.node r.Ddgt.graph e.e_dst).n_replica)
    mo_edges

let test_ddgt_rf_inputs_flow_to_instances () =
  let f, r = transform4 () in
  (* RF n1->n4 replicated: every instance of n4 receives n1's value *)
  let rf =
    List.filter
      (fun (e : G.edge) ->
        e.e_kind = G.RF && e.e_src = f.n1
        && (G.node r.Ddgt.graph e.e_dst).n_orig = f.n4)
      (G.edges r.Ddgt.graph)
  in
  Alcotest.(check int) "n1 feeds all 4 instances" 4 (List.length rf);
  Alcotest.(check int) "3 extra value operands for n4" 3
    (Ddgt.replicated_value_operands r f.n4)

let test_ddgt_result_validates () =
  let _, r = transform4 () in
  match G.validate r.Ddgt.graph with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_ddgt_loads_unconstrained () =
  let f, r = transform4 () in
  (* after the transformation the loads form no chain with the stores:
     MDC on the transformed graph must not group loads *)
  List.iter
    (fun l ->
      Alcotest.(check (option int)) "load not replica-pinned" None
        (G.node r.Ddgt.graph l).n_replica)
    [ f.n1; f.n2 ]

let test_ddgt_independent_store_not_replicated () =
  let g = G.create () in
  let _ = G.add_node g (G.Store (mr "x" ~affine:(4, 0))) in
  let r = Ddgt.transform ~clusters:4 g in
  Alcotest.(check int) "independent store untouched" 0
    (List.length r.Ddgt.replicas);
  Alcotest.(check int) "one node still" 1 (G.node_count r.Ddgt.graph)

let test_ddgt_two_clusters () =
  let f = figure3 () in
  let r = Ddgt.transform ~clusters:2 f.g in
  List.iter
    (fun s ->
      Alcotest.(check int) "1 new instance with N=2" 1
        (List.length (List.assoc s r.Ddgt.replicas)))
    [ f.n3; f.n4 ]

(* --- lowering-driven chains (end to end on .lk sources) --- *)

let lower_src src = Lower.lower (Ir.Parser.parse_kernel src)

let test_lowered_no_chain_for_disjoint () =
  let low =
    lower_src
      "kernel k { array a : i32[64] = zero array b : i32[64] = zero trip 64 body { b[i] = a[i] + 1 } }"
  in
  Alcotest.(check (float 1e-9)) "no chain: CMR 0" 0.
    (Chains.cmr low.Lower.graph);
  (* load a and store b are provably independent: two singleton chains *)
  Alcotest.(check int) "two singleton chains" 2
    (List.length (Chains.chains low.Lower.graph))

let test_lowered_inplace_chain () =
  (* in-place update a[i] = a[i] + a[i+1]: loads and store alias *)
  let low =
    lower_src
      "kernel k { array a : i32[65] = zero trip 64 body { a[i] = a[i] + a[i + 1] } }"
  in
  let big = Chains.biggest low.Lower.graph in
  Alcotest.(check int) "three memory ops chained" 3 (List.length big);
  Alcotest.(check (float 1e-9)) "CMR 1" 1.0 (Chains.cmr low.Lower.graph)

let test_lowered_indirect_chains_everything () =
  let low =
    lower_src
      "kernel k { array idx : i32[64] = modpat(64) array a : i32[64] = zero trip 64 body { a[idx[i]] = a[i] + 1 } }"
  in
  (* the indirect store aliases both the load a[i]; idx accesses are reads
     of a different array: chain = {load a, store a} *)
  let big = Chains.biggest low.Lower.graph in
  Alcotest.(check int) "indirect store chains with load" 2 (List.length big)

(* --- specialization (Table 5 mechanics) --- *)

let test_specialize_removes_false_deps () =
  (* idx is a permutation touching only even elements; the load walks odd
     elements: compiler cannot prove it, profile shows no overlap *)
  let src =
    "kernel k { array idx : i32[32] = modpat(16) array a : i32[64] = zero trip 32 body { a[2 * idx[i]] = a[2*i + 1] + 1 } }"
  in
  let k = Ir.Parser.parse_kernel src in
  let low = Lower.lower k in
  let layout = Ir.Layout.make k in
  let profile = Ir.Interp.run ~layout k in
  let before = Chains.cmr low.Lower.graph in
  let r = Specialize.specialize low ~profile in
  let after = Chains.cmr r.Specialize.graph in
  Alcotest.(check bool) "some ambiguous dep removed" true (r.Specialize.removed > 0);
  Alcotest.(check bool) "CMR does not grow" true (after <= before);
  Alcotest.(check bool) "chain dissolved" true (after < before)

let test_specialize_keeps_true_deps () =
  (* genuine in-place dependence must survive *)
  let src =
    "kernel k { array idx : i32[32] = modpat(32) array a : i32[32] = zero trip 32 body { a[idx[i]] = a[i] + 1 } }"
  in
  let k = Ir.Parser.parse_kernel src in
  let low = Lower.lower k in
  let layout = Ir.Layout.make k in
  let profile = Ir.Interp.run ~layout k in
  let r = Specialize.specialize low ~profile in
  Alcotest.(check bool) "materialised deps kept" true (r.Specialize.kept_ambiguous > 0);
  Alcotest.(check (float 1e-9)) "CMR unchanged"
    (Chains.cmr low.Lower.graph)
    (Chains.cmr r.Specialize.graph)

let test_specialize_exact_deps_untouched () =
  let src =
    "kernel k { array a : i32[65] = zero trip 64 body { a[i] = a[i] + a[i+1] } }"
  in
  let k = Ir.Parser.parse_kernel src in
  let low = Lower.lower k in
  let layout = Ir.Layout.make k in
  let profile = Ir.Interp.run ~layout k in
  let r = Specialize.specialize low ~profile in
  Alcotest.(check int) "nothing removable" 0 r.Specialize.removed

(* --- QCheck --- *)

let prop_chains_partition_mem_nodes =
  QCheck.Test.make ~name:"chains partition memory nodes" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 7) (int_range 0 7))))
    (fun (nmem, deps) ->
      let g = G.create () in
      let ids =
        Array.init nmem (fun k ->
            (G.add_node g
               (if k mod 2 = 0 then G.Store (mr "m" ~site:k)
                else G.Load (mr "m" ~site:k))).n_id)
      in
      List.iter
        (fun (a, b) ->
          if a < nmem && b < nmem && a <> b then (
            let na = G.node g ids.(a) and nb = G.node g ids.(b) in
            let kind =
              match (G.is_store na, G.is_store nb) with
              | true, true -> Some G.MO
              | true, false -> Some G.MF
              | false, true -> Some G.MA
              | false, false -> None
            in
            match kind with
            | Some k -> G.add_edge g ~dist:1 k ~src:ids.(a) ~dst:ids.(b)
            | None -> ()))
        deps;
      let cs = Chains.chains g in
      let all = List.concat cs |> List.sort compare in
      all = (Array.to_list ids |> List.sort compare))

let prop_ddgt_no_ma_and_validates =
  QCheck.Test.make ~name:"DDGT output has no MA edges and validates" ~count:100
    QCheck.(pair (int_range 2 6) (small_list (pair (int_range 0 5) (int_range 0 5))))
    (fun (nmem, deps) ->
      let g = G.create () in
      let ids =
        Array.init nmem (fun k ->
            (G.add_node g ~seq:k
               (if k mod 2 = 0 then G.Store (mr "m" ~site:k)
                else G.Load (mr "m" ~site:k))).n_id)
      in
      List.iter
        (fun (a, b) ->
          if a < nmem && b < nmem && a <> b then (
            let na = G.node g ids.(a) and nb = G.node g ids.(b) in
            let dist = if a < b then 0 else 1 in
            match (G.is_store na, G.is_store nb) with
            | true, true -> G.add_edge g ~dist G.MO ~src:ids.(a) ~dst:ids.(b)
            | true, false -> G.add_edge g ~dist G.MF ~src:ids.(a) ~dst:ids.(b)
            | false, true -> G.add_edge g ~dist G.MA ~src:ids.(a) ~dst:ids.(b)
            | false, false -> ()))
        deps;
      QCheck.assume (G.validate g = Ok ());
      let r = Ddgt.transform ~clusters:4 g in
      G.validate r.Ddgt.graph = Ok ()
      && List.for_all (fun (e : G.edge) -> e.e_kind <> G.MA) (G.edges r.Ddgt.graph))

let () =
  Alcotest.run "core"
    [
      ( "chains",
        [
          Alcotest.test_case "figure 3 chain" `Quick test_fig3_chain;
          Alcotest.test_case "figure 3 ratios" `Quick test_fig3_ratios;
          Alcotest.test_case "average preferred cluster" `Quick
            test_chain_average_preferred_cluster;
          Alcotest.test_case "mincoms groups" `Quick test_chains_mincoms_groups;
          Alcotest.test_case "independent ops" `Quick
            test_independent_ops_no_chain_constraint;
          Alcotest.test_case "empty graph" `Quick test_empty_graph_ratios;
        ] );
      ( "ddgt",
        [
          Alcotest.test_case "replicates stores" `Quick
            test_ddgt_replicates_dependent_stores;
          Alcotest.test_case "input intact" `Quick test_ddgt_input_left_intact;
          Alcotest.test_case "no MA left" `Quick test_ddgt_no_ma_left;
          Alcotest.test_case "sync counts" `Quick test_ddgt_sync_counts;
          Alcotest.test_case "single fake consumer" `Quick
            test_ddgt_single_fake_consumer;
          Alcotest.test_case "n5 syncs stores" `Quick test_ddgt_n5_syncs_stores;
          Alcotest.test_case "MF replicated" `Quick test_ddgt_mf_edges_replicated;
          Alcotest.test_case "MO same-cluster pairing" `Quick
            test_ddgt_store_store_same_cluster_pairing;
          Alcotest.test_case "RF inputs to instances" `Quick
            test_ddgt_rf_inputs_flow_to_instances;
          Alcotest.test_case "validates" `Quick test_ddgt_result_validates;
          Alcotest.test_case "loads unconstrained" `Quick test_ddgt_loads_unconstrained;
          Alcotest.test_case "independent store" `Quick
            test_ddgt_independent_store_not_replicated;
          Alcotest.test_case "two clusters" `Quick test_ddgt_two_clusters;
        ] );
      ( "lowered chains",
        [
          Alcotest.test_case "disjoint arrays" `Quick test_lowered_no_chain_for_disjoint;
          Alcotest.test_case "in-place chain" `Quick test_lowered_inplace_chain;
          Alcotest.test_case "indirect chains" `Quick
            test_lowered_indirect_chains_everything;
        ] );
      ( "specialize",
        [
          Alcotest.test_case "removes false deps" `Quick
            test_specialize_removes_false_deps;
          Alcotest.test_case "keeps true deps" `Quick test_specialize_keeps_true_deps;
          Alcotest.test_case "exact untouched" `Quick
            test_specialize_exact_deps_untouched;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chains_partition_mem_nodes; prop_ddgt_no_ma_and_validates ] );
    ]
